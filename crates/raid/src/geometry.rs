//! Array geometry: logical↔physical mapping for RAID10.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Whether a disk holds the primary or the mirror copy of its pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DiskRole {
    /// The primary copy (`P_i` in the paper).
    Primary,
    /// The mirror copy (`M_i`).
    Mirror,
}

/// Error returned by geometry operations on invalid addresses or
/// configurations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeometryError {
    /// The configuration itself is invalid.
    InvalidConfig(String),
    /// An address or extent falls outside the logical address space.
    OutOfRange {
        /// Requested start address.
        offset: u64,
        /// Requested length.
        bytes: u64,
        /// The logical capacity that was exceeded.
        capacity: u64,
    },
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::InvalidConfig(msg) => write!(f, "invalid array configuration: {msg}"),
            GeometryError::OutOfRange {
                offset,
                bytes,
                capacity,
            } => write!(
                f,
                "extent [{offset}, {}) exceeds logical capacity {capacity}",
                offset + bytes
            ),
        }
    }
}

impl Error for GeometryError {}

/// A physically contiguous extent on both disks of one mirrored pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhysExtent {
    /// Mirrored-pair index.
    pub pair: usize,
    /// Byte offset within the pair's disks (same on primary and mirror).
    pub offset: u64,
    /// Extent length in bytes.
    pub bytes: u64,
    /// Logical address this extent maps back to (for destage bookkeeping).
    pub logical: u64,
}

/// RAID10 array geometry.
///
/// Disk numbering: primaries are `0..pairs`, mirrors are `pairs..2·pairs`,
/// so `P_i = i` and `M_i = pairs + i`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrayGeometry {
    pairs: usize,
    stripe_unit: u64,
    data_region: u64,
    logger_region: u64,
}

impl ArrayGeometry {
    /// Creates a geometry with `pairs` mirrored pairs, the given stripe
    /// unit, and per-disk data/logger region sizes in bytes.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::InvalidConfig`] if any parameter is zero
    /// (a zero logger region is allowed — plain RAID10 has no logger) or
    /// the data region is not a multiple of the stripe unit.
    pub fn new(
        pairs: usize,
        stripe_unit: u64,
        data_region: u64,
        logger_region: u64,
    ) -> Result<Self, GeometryError> {
        if pairs == 0 {
            return Err(GeometryError::InvalidConfig("zero mirrored pairs".into()));
        }
        if stripe_unit == 0 {
            return Err(GeometryError::InvalidConfig("zero stripe unit".into()));
        }
        if data_region == 0 {
            return Err(GeometryError::InvalidConfig("zero data region".into()));
        }
        if !data_region.is_multiple_of(stripe_unit) {
            return Err(GeometryError::InvalidConfig(format!(
                "data region {data_region} is not a multiple of the stripe unit {stripe_unit}"
            )));
        }
        Ok(ArrayGeometry {
            pairs,
            stripe_unit,
            data_region,
            logger_region,
        })
    }

    /// Number of mirrored pairs.
    pub fn pairs(&self) -> usize {
        self.pairs
    }

    /// Total number of disks (`2 × pairs`).
    pub fn disks(&self) -> usize {
        self.pairs * 2
    }

    /// Stripe unit in bytes.
    pub fn stripe_unit(&self) -> u64 {
        self.stripe_unit
    }

    /// Per-disk data-region size in bytes.
    pub fn data_region(&self) -> u64 {
        self.data_region
    }

    /// Per-disk logger-region size in bytes (zero for plain RAID10).
    pub fn logger_region(&self) -> u64 {
        self.logger_region
    }

    /// Byte offset at which the logger region starts on every disk.
    pub fn logger_base(&self) -> u64 {
        self.data_region
    }

    /// Required per-disk capacity.
    pub fn disk_capacity(&self) -> u64 {
        self.data_region + self.logger_region
    }

    /// Usable logical capacity of the array.
    pub fn logical_capacity(&self) -> u64 {
        self.data_region * self.pairs as u64
    }

    /// Disk id of pair `pair`'s primary.
    ///
    /// # Panics
    ///
    /// Panics if `pair` is out of range.
    pub fn primary_disk(&self, pair: usize) -> usize {
        assert!(pair < self.pairs, "pair {pair} out of range");
        pair
    }

    /// Disk id of pair `pair`'s mirror.
    ///
    /// # Panics
    ///
    /// Panics if `pair` is out of range.
    pub fn mirror_disk(&self, pair: usize) -> usize {
        assert!(pair < self.pairs, "pair {pair} out of range");
        self.pairs + pair
    }

    /// Role and pair of a disk id.
    ///
    /// # Panics
    ///
    /// Panics if `disk` is out of range.
    pub fn disk_role(&self, disk: usize) -> (DiskRole, usize) {
        assert!(disk < self.disks(), "disk {disk} out of range");
        if disk < self.pairs {
            (DiskRole::Primary, disk)
        } else {
            (DiskRole::Mirror, disk - self.pairs)
        }
    }

    /// Maps a logical byte address to its position on the owning pair.
    /// The returned extent is clipped to the end of the stripe unit.
    ///
    /// # Errors
    ///
    /// [`GeometryError::OutOfRange`] if the address is past the end of the
    /// logical space.
    pub fn map(&self, offset: u64, bytes: u64) -> Result<PhysExtent, GeometryError> {
        if offset + bytes > self.logical_capacity() {
            return Err(GeometryError::OutOfRange {
                offset,
                bytes,
                capacity: self.logical_capacity(),
            });
        }
        let stripe = offset / self.stripe_unit;
        let within = offset % self.stripe_unit;
        let pair = (stripe % self.pairs as u64) as usize;
        let disk_stripe = stripe / self.pairs as u64;
        let phys_offset = disk_stripe * self.stripe_unit + within;
        let clipped = bytes.min(self.stripe_unit - within);
        Ok(PhysExtent {
            pair,
            offset: phys_offset,
            bytes: clipped,
            logical: offset,
        })
    }

    /// Inverse of [`map`](Self::map) for a single address: given a pair and
    /// a physical offset, returns the logical address.
    ///
    /// # Panics
    ///
    /// Panics if `pair` is out of range or the offset is in the logger
    /// region.
    pub fn unmap(&self, pair: usize, phys_offset: u64) -> u64 {
        assert!(pair < self.pairs, "pair {pair} out of range");
        assert!(
            phys_offset < self.data_region,
            "offset {phys_offset} is in the logger region"
        );
        let disk_stripe = phys_offset / self.stripe_unit;
        let within = phys_offset % self.stripe_unit;
        (disk_stripe * self.pairs as u64 + pair as u64) * self.stripe_unit + within
    }

    /// Splits a logical extent into per-pair physical extents, in logical
    /// order. Adjacent fragments that land on the same pair contiguously
    /// are *not* merged (each fragment is at most one stripe unit) —
    /// callers that care coalesce themselves.
    ///
    /// # Errors
    ///
    /// [`GeometryError::OutOfRange`] if the extent exceeds the logical
    /// space.
    pub fn split(&self, offset: u64, bytes: u64) -> Result<Vec<PhysExtent>, GeometryError> {
        if offset + bytes > self.logical_capacity() {
            return Err(GeometryError::OutOfRange {
                offset,
                bytes,
                capacity: self.logical_capacity(),
            });
        }
        let mut out = Vec::with_capacity((bytes / self.stripe_unit + 2) as usize);
        let mut cur = offset;
        let end = offset + bytes;
        while cur < end {
            let ext = self.map(cur, end - cur)?;
            cur += ext.bytes;
            out.push(ext);
        }
        Ok(out)
    }

    /// The set of distinct pairs touched by a logical extent.
    pub fn pairs_touched(&self, offset: u64, bytes: u64) -> Result<Vec<usize>, GeometryError> {
        let mut pairs: Vec<usize> = self.split(offset, bytes)?.iter().map(|e| e.pair).collect();
        pairs.sort_unstable();
        pairs.dedup();
        Ok(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const SU: u64 = 64 * 1024;

    fn geo() -> ArrayGeometry {
        ArrayGeometry::new(10, SU, 10 << 30, 8 << 30).unwrap()
    }

    #[test]
    fn basic_mapping_round_robin() {
        let g = geo();
        for i in 0..30u64 {
            let e = g.map(i * SU, SU).unwrap();
            assert_eq!(e.pair, (i % 10) as usize);
            assert_eq!(e.offset, (i / 10) * SU);
            assert_eq!(e.bytes, SU);
        }
    }

    #[test]
    fn map_clips_at_stripe_boundary() {
        let g = geo();
        let e = g.map(SU - 4096, 8192).unwrap();
        assert_eq!(e.bytes, 4096);
        assert_eq!(e.pair, 0);
    }

    #[test]
    fn split_tiles_request_exactly() {
        let g = geo();
        let exts = g.split(SU / 2, 5 * SU).unwrap();
        let total: u64 = exts.iter().map(|e| e.bytes).sum();
        assert_eq!(total, 5 * SU);
        // Fragments are logically contiguous.
        let mut cur = SU / 2;
        for e in &exts {
            assert_eq!(e.logical, cur);
            cur += e.bytes;
        }
    }

    #[test]
    fn unmap_inverts_map() {
        let g = geo();
        for off in [0, 4096, SU - 1, SU, 13 * SU + 17, (10 << 30) * 10 - 4096] {
            let e = g.map(off, 1).unwrap();
            assert_eq!(g.unmap(e.pair, e.offset), off, "offset {off}");
        }
    }

    #[test]
    fn disk_numbering() {
        let g = geo();
        assert_eq!(g.primary_disk(3), 3);
        assert_eq!(g.mirror_disk(3), 13);
        assert_eq!(g.disk_role(3), (DiskRole::Primary, 3));
        assert_eq!(g.disk_role(13), (DiskRole::Mirror, 3));
        assert_eq!(g.disks(), 20);
    }

    #[test]
    fn capacities() {
        let g = geo();
        assert_eq!(g.logical_capacity(), 10 * (10u64 << 30));
        assert_eq!(g.disk_capacity(), 18u64 << 30);
        assert_eq!(g.logger_base(), 10u64 << 30);
    }

    #[test]
    fn out_of_range_rejected() {
        let g = geo();
        let cap = g.logical_capacity();
        assert!(matches!(
            g.map(cap, 1),
            Err(GeometryError::OutOfRange { .. })
        ));
        assert!(g.map(cap - 1, 1).is_ok());
        assert!(g.split(cap - 100, 200).is_err());
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(ArrayGeometry::new(0, SU, 1 << 30, 0).is_err());
        assert!(ArrayGeometry::new(4, 0, 1 << 30, 0).is_err());
        assert!(ArrayGeometry::new(4, SU, 0, 0).is_err());
        assert!(ArrayGeometry::new(4, SU, SU + 1, 0).is_err());
        // Zero logger region is fine (plain RAID10).
        assert!(ArrayGeometry::new(4, SU, 1 << 30, 0).is_ok());
    }

    #[test]
    fn pairs_touched_dedups() {
        let g = geo();
        // 20 stripe units wrap the 10 pairs twice.
        let touched = g.pairs_touched(0, 20 * SU).unwrap();
        assert_eq!(touched, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn error_display_is_informative() {
        let e = GeometryError::OutOfRange {
            offset: 10,
            bytes: 5,
            capacity: 12,
        };
        assert!(e.to_string().contains("[10, 15)"));
    }

    proptest! {
        #[test]
        fn prop_split_tiles_exactly(
            pairs in 1usize..16,
            su_kib in prop::sample::select(vec![16u64, 32, 64]),
            start in 0u64..1_000_000,
            len in 1u64..2_000_000,
        ) {
            let su = su_kib * 1024;
            let g = ArrayGeometry::new(pairs, su, 1 << 30, 0).unwrap();
            prop_assume!(start + len <= g.logical_capacity());
            let exts = g.split(start, len).unwrap();
            let mut cur = start;
            for e in &exts {
                prop_assert_eq!(e.logical, cur);
                prop_assert!(e.bytes > 0 && e.bytes <= su);
                prop_assert!(e.offset + e.bytes <= g.data_region());
                cur += e.bytes;
            }
            prop_assert_eq!(cur, start + len);
        }

        #[test]
        fn prop_map_unmap_bijection(
            pairs in 1usize..16,
            off in 0u64..(1u64 << 30),
        ) {
            let g = ArrayGeometry::new(pairs, 64 * 1024, 1 << 30, 0).unwrap();
            prop_assume!(off < g.logical_capacity());
            let e = g.map(off, 1).unwrap();
            prop_assert_eq!(g.unmap(e.pair, e.offset), off);
        }

        #[test]
        fn prop_distinct_logical_distinct_physical(
            a in 0u64..(1u64 << 28),
            b in 0u64..(1u64 << 28),
        ) {
            prop_assume!(a != b);
            let g = ArrayGeometry::new(7, 16 * 1024, 1 << 28, 0).unwrap();
            prop_assume!(a < g.logical_capacity() && b < g.logical_capacity());
            let ea = g.map(a, 1).unwrap();
            let eb = g.map(b, 1).unwrap();
            prop_assert!(ea.pair != eb.pair || ea.offset != eb.offset);
        }
    }
}
