#![warn(missing_docs)]
//! RAID10 striping and mirroring layout.
//!
//! A RAID10 array is `n` mirrored pairs `(P_i, M_i)`. The logical address
//! space is striped round-robin across the pairs in fixed stripe units
//! (16/32/64 KB in the paper); each stripe unit is mirrored on both disks
//! of its pair.
//!
//! Following the paper's free-space model (§III-E), each disk is divided
//! into a **data region** (the RAID10 image, at the front) and a **logger
//! region** (the unused capacity at the back) which the RoLo controllers
//! appropriate as logging space. This crate handles the geometry: mapping
//! logical extents to `(pair, disk offset)` extents and splitting requests
//! that straddle stripe boundaries.
//!
//! # Example
//!
//! ```
//! use rolo_raid::ArrayGeometry;
//!
//! let geo = ArrayGeometry::new(4, 64 * 1024, 10 << 30, 8 << 30)?;
//! assert_eq!(geo.logical_capacity(), 4 * (10u64 << 30));
//! let ext = geo.map(64 * 1024, 4096)?;
//! assert_eq!(ext.pair, 1); // second stripe unit lands on pair 1
//! assert_eq!(geo.primary_disk(ext.pair), 1);
//! assert_eq!(geo.mirror_disk(ext.pair), 5);
//! # Ok::<(), rolo_raid::GeometryError>(())
//! ```

pub mod geometry;

pub use geometry::{ArrayGeometry, DiskRole, GeometryError, PhysExtent};
