//! Log-scaled latency histogram.
//!
//! Fixed memory, ~4 % relative bucket width, covering 1 µs … ~20 000 s —
//! wide enough to span a cache hit and a spin-up-delayed read miss (the
//! paper notes read misses cost "1000–10000 times" a hit).

use rolo_sim::Duration;
use serde::{Deserialize, Serialize};

/// Number of buckets; bucket `i` covers `[GROWTH^i, GROWTH^(i+1))` µs.
const BUCKETS: usize = 600;
/// Geometric growth factor of bucket boundaries.
const GROWTH: f64 = 1.04;

/// A histogram of durations with geometric buckets.
///
/// # Example
///
/// ```
/// use rolo_metrics::LatencyHistogram;
/// use rolo_sim::Duration;
///
/// let mut h = LatencyHistogram::new();
/// for ms in 1..=100 {
///     h.record(Duration::from_millis(ms));
/// }
/// let p50 = h.percentile(50.0).unwrap();
/// assert!((p50.as_millis_f64() - 50.0).abs() < 5.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
        }
    }

    fn bucket_of(d: Duration) -> usize {
        let us = d.as_micros().max(1) as f64;
        let idx = us.ln() / GROWTH.ln();
        (idx as usize).min(BUCKETS - 1)
    }

    /// Lower bound of bucket `i`.
    fn bucket_floor(i: usize) -> Duration {
        Duration::from_micros(GROWTH.powi(i as i32) as u64)
    }

    /// Records one observation.
    pub fn record(&mut self, d: Duration) {
        self.counts[Self::bucket_of(d)] += 1;
        self.total += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The `p`-th percentile (0–100), or `None` if empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<Duration> {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.total == 0 {
            return None;
        }
        let target = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(Self::bucket_floor(i));
            }
        }
        Some(Self::bucket_floor(BUCKETS - 1))
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Merges an iterator of histograms into a fresh one — e.g. folding
    /// per-phase or per-scheme histograms into a combined view.
    pub fn merged<'a, I>(parts: I) -> LatencyHistogram
    where
        I: IntoIterator<Item = &'a LatencyHistogram>,
    {
        let mut out = LatencyHistogram::new();
        for h in parts {
            out.merge(h);
        }
        out
    }
}

/// Exact sample percentile over raw observations — the ground-truth
/// reference every bucketed estimator in the workspace is validated
/// against. Returns the value at 1-based rank `ceil(p/100 · n)` of the
/// sorted samples (`None` when empty), matching the rank convention of
/// [`LatencyHistogram::percentile`] and `rolo_obs`'s quantile sketch.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]`.
pub fn exact_percentile(samples: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
    if samples.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN samples"));
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    Some(sorted[rank - 1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_has_no_percentiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.percentile(50.0).is_none());
    }

    #[test]
    fn single_value_dominates_all_percentiles() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_millis(10));
        let lo = h.percentile(1.0).unwrap();
        let hi = h.percentile(99.0).unwrap();
        assert_eq!(lo, hi);
        // Bucket resolution: within ~5 %.
        assert!((lo.as_millis_f64() - 10.0).abs() < 0.6, "{lo}");
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut h = LatencyHistogram::new();
        for us in [10u64, 100, 1_000, 10_000, 100_000, 1_000_000] {
            for _ in 0..10 {
                h.record(Duration::from_micros(us));
            }
        }
        let mut prev = Duration::ZERO;
        for p in [1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0] {
            let v = h.percentile(p).unwrap();
            assert!(v >= prev, "p{p}: {v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Duration::from_micros(50));
        b.record(Duration::from_secs(5));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!(a.percentile(99.0).unwrap() > Duration::from_secs(1));
    }

    #[test]
    fn merged_folds_many() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut c = LatencyHistogram::new();
        a.record(Duration::from_micros(10));
        b.record(Duration::from_millis(10));
        c.record(Duration::from_secs(10));
        let m = LatencyHistogram::merged([&a, &b, &c]);
        assert_eq!(m.count(), 3);
        assert!(m.percentile(99.0).unwrap() >= Duration::from_secs(9));
    }

    #[test]
    fn handles_extremes() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::ZERO);
        h.record(Duration::from_secs(100_000));
        assert_eq!(h.count(), 2);
        assert!(h.percentile(100.0).is_some());
    }

    #[test]
    fn exact_percentile_rank_convention() {
        assert_eq!(exact_percentile(&[], 50.0), None);
        let v = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(exact_percentile(&v, 0.0), Some(1.0));
        assert_eq!(exact_percentile(&v, 50.0), Some(3.0));
        assert_eq!(exact_percentile(&v, 100.0), Some(5.0));
        // rank = ceil(0.95 * 5) = 5 → the max.
        assert_eq!(exact_percentile(&v, 95.0), Some(5.0));
    }

    proptest! {
        #[test]
        fn prop_bucket_floor_close_to_value(us in 1u64..100_000_000) {
            let d = Duration::from_micros(us);
            let mut h = LatencyHistogram::new();
            h.record(d);
            let est = h.percentile(50.0).unwrap();
            let ratio = est.as_micros() as f64 / us as f64;
            // Geometric bucketing: estimate within one bucket width.
            prop_assert!(ratio > 0.9 && ratio < 1.1, "ratio {ratio}");
        }
    }
}
