//! Logging/destaging phase tracking.
//!
//! The motivation study (§II, Fig. 2) defines the **destaging interval
//! ratio** as the fraction of each logging cycle's wall time spent
//! destaging, and the **destaging energy ratio** analogously for energy.
//! Controllers report phase boundaries here; the tracker accumulates
//! per-phase residency and energy and computes the ratios. Phases of the
//! same kind may overlap (RoLo's decentralized destaging runs several
//! concurrent destage processes); overlapping spans are merged per kind
//! when accumulating so a kind's residency never exceeds wall time.

use rolo_sim::{Duration, SimTime};
use serde::{Deserialize, Serialize};

/// The two phases of a logging cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Writes are being redirected to the logger.
    Logging,
    /// Inconsistent mirror blocks are being updated.
    Destaging,
}

/// Summary of one phase kind.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PhaseSummary {
    /// Number of completed spans.
    pub spans: u64,
    /// Total (overlap-merged) residency.
    pub residency: Duration,
    /// Energy attributed to the phase (J), as reported by the caller.
    pub energy_j: f64,
}

/// Tracks logging/destaging spans and computes the Fig. 2 ratios.
///
/// # Example
///
/// ```
/// use rolo_metrics::{IntervalTracker, Phase};
/// use rolo_sim::SimTime;
///
/// let mut t = IntervalTracker::new();
/// let log = t.begin(Phase::Logging, SimTime::ZERO);
/// t.end(log, SimTime::from_secs(80), 0.0);
/// let de = t.begin(Phase::Destaging, SimTime::from_secs(80));
/// t.end(de, SimTime::from_secs(100), 0.0);
/// assert!((t.interval_ratio(Phase::Destaging) - 0.2).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct IntervalTracker {
    logging: PhaseSummary,
    destaging: PhaseSummary,
    /// Open spans: (token, phase, start).
    open: Vec<(u64, Phase, SimTime)>,
    /// Completed raw spans per kind for overlap merging: (start, end).
    done_logging: Vec<(SimTime, SimTime)>,
    done_destaging: Vec<(SimTime, SimTime)>,
    next_token: u64,
}

impl IntervalTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a span of `phase` at `start`; returns a token to close it.
    pub fn begin(&mut self, phase: Phase, start: SimTime) -> u64 {
        let token = self.next_token;
        self.next_token += 1;
        self.open.push((token, phase, start));
        token
    }

    /// Closes the span identified by `token` at `end`, attributing
    /// `energy_j` joules to its phase.
    ///
    /// # Panics
    ///
    /// Panics if the token is unknown (already closed or never opened).
    pub fn end(&mut self, token: u64, end: SimTime, energy_j: f64) {
        let idx = self
            .open
            .iter()
            .position(|(t, _, _)| *t == token)
            .unwrap_or_else(|| panic!("unknown interval token {token}"));
        let (_, phase, start) = self.open.swap_remove(idx);
        let end = end.max(start);
        let summary = match phase {
            Phase::Logging => {
                self.done_logging.push((start, end));
                &mut self.logging
            }
            Phase::Destaging => {
                self.done_destaging.push((start, end));
                &mut self.destaging
            }
        };
        summary.spans += 1;
        summary.energy_j += energy_j;
    }

    /// Number of spans currently open.
    pub fn open_spans(&self) -> usize {
        self.open.len()
    }

    fn merged_residency(spans: &[(SimTime, SimTime)]) -> Duration {
        if spans.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = spans.to_vec();
        sorted.sort_unstable();
        let mut total = Duration::ZERO;
        let (mut cur_s, mut cur_e) = sorted[0];
        for &(s, e) in &sorted[1..] {
            if s <= cur_e {
                cur_e = cur_e.max(e);
            } else {
                total += cur_e.since(cur_s);
                cur_s = s;
                cur_e = e;
            }
        }
        total += cur_e.since(cur_s);
        total
    }

    /// Completed-span summary for `phase` (with overlap-merged residency).
    pub fn summary(&self, phase: Phase) -> PhaseSummary {
        let (base, spans) = match phase {
            Phase::Logging => (self.logging, &self.done_logging),
            Phase::Destaging => (self.destaging, &self.done_destaging),
        };
        PhaseSummary {
            residency: Self::merged_residency(spans),
            ..base
        }
    }

    /// Fraction of cycle wall time spent in `phase` — the paper's
    /// *destaging interval ratio* when called with
    /// [`Phase::Destaging`]. Zero if nothing has completed.
    pub fn interval_ratio(&self, phase: Phase) -> f64 {
        let l = self.summary(Phase::Logging).residency.as_secs_f64();
        let d = self.summary(Phase::Destaging).residency.as_secs_f64();
        let total = l + d;
        if total == 0.0 {
            return 0.0;
        }
        match phase {
            Phase::Logging => l / total,
            Phase::Destaging => d / total,
        }
    }

    /// Fraction of cycle energy consumed in `phase` — the paper's
    /// *destaging energy ratio* when called with [`Phase::Destaging`].
    pub fn energy_ratio(&self, phase: Phase) -> f64 {
        let l = self.summary(Phase::Logging).energy_j;
        let d = self.summary(Phase::Destaging).energy_j;
        let total = l + d;
        if total == 0.0 {
            return 0.0;
        }
        match phase {
            Phase::Logging => l / total,
            Phase::Destaging => d / total,
        }
    }

    /// Mean completed span length of `phase`.
    pub fn mean_span(&self, phase: Phase) -> Option<Duration> {
        let spans = match phase {
            Phase::Logging => &self.done_logging,
            Phase::Destaging => &self.done_destaging,
        };
        if spans.is_empty() {
            return None;
        }
        let total: Duration = spans.iter().map(|(s, e)| e.since(*s)).sum();
        Some(total / spans.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_alternation() {
        let mut t = IntervalTracker::new();
        // Two cycles: 80 s logging + 20 s destaging each.
        for c in 0..2u64 {
            let base = c * 100;
            let l = t.begin(Phase::Logging, SimTime::from_secs(base));
            t.end(l, SimTime::from_secs(base + 80), 800.0);
            let d = t.begin(Phase::Destaging, SimTime::from_secs(base + 80));
            t.end(d, SimTime::from_secs(base + 100), 400.0);
        }
        assert!((t.interval_ratio(Phase::Destaging) - 0.2).abs() < 1e-9);
        assert!((t.energy_ratio(Phase::Destaging) - 400.0 * 2.0 / 2400.0).abs() < 1e-9);
        assert_eq!(t.summary(Phase::Logging).spans, 2);
        assert_eq!(
            t.mean_span(Phase::Destaging).unwrap(),
            Duration::from_secs(20)
        );
    }

    #[test]
    fn overlapping_destage_spans_merge() {
        let mut t = IntervalTracker::new();
        let a = t.begin(Phase::Destaging, SimTime::from_secs(0));
        let b = t.begin(Phase::Destaging, SimTime::from_secs(5));
        t.end(a, SimTime::from_secs(10), 0.0);
        t.end(b, SimTime::from_secs(12), 0.0);
        // Merged residency is 12 s, not 17 s.
        assert_eq!(
            t.summary(Phase::Destaging).residency,
            Duration::from_secs(12)
        );
    }

    #[test]
    fn disjoint_spans_accumulate() {
        let mut t = IntervalTracker::new();
        let a = t.begin(Phase::Destaging, SimTime::from_secs(0));
        t.end(a, SimTime::from_secs(3), 0.0);
        let b = t.begin(Phase::Destaging, SimTime::from_secs(10));
        t.end(b, SimTime::from_secs(14), 0.0);
        assert_eq!(
            t.summary(Phase::Destaging).residency,
            Duration::from_secs(7)
        );
    }

    #[test]
    fn empty_ratios_are_zero() {
        let t = IntervalTracker::new();
        assert_eq!(t.interval_ratio(Phase::Destaging), 0.0);
        assert_eq!(t.energy_ratio(Phase::Logging), 0.0);
        assert!(t.mean_span(Phase::Logging).is_none());
    }

    #[test]
    fn open_spans_visible() {
        let mut t = IntervalTracker::new();
        let tok = t.begin(Phase::Logging, SimTime::ZERO);
        assert_eq!(t.open_spans(), 1);
        t.end(tok, SimTime::from_secs(1), 0.0);
        assert_eq!(t.open_spans(), 0);
    }

    #[test]
    #[should_panic(expected = "unknown interval token")]
    fn double_close_panics() {
        let mut t = IntervalTracker::new();
        let tok = t.begin(Phase::Logging, SimTime::ZERO);
        t.end(tok, SimTime::from_secs(1), 0.0);
        t.end(tok, SimTime::from_secs(2), 0.0);
    }

    #[test]
    fn ratios_complement() {
        let mut t = IntervalTracker::new();
        let l = t.begin(Phase::Logging, SimTime::ZERO);
        t.end(l, SimTime::from_secs(30), 10.0);
        let d = t.begin(Phase::Destaging, SimTime::from_secs(30));
        t.end(d, SimTime::from_secs(40), 30.0);
        let sum = t.interval_ratio(Phase::Logging) + t.interval_ratio(Phase::Destaging);
        assert!((sum - 1.0).abs() < 1e-12);
        let esum = t.energy_ratio(Phase::Logging) + t.energy_ratio(Phase::Destaging);
        assert!((esum - 1.0).abs() < 1e-12);
    }
}
