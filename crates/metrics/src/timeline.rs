//! Sampled time-series for quantities like occupied logging capacity
//! (Fig. 2a plots logging capacity over time).

use rolo_sim::{Duration, SimTime};
use serde::{Deserialize, Serialize};

/// A time-series sampled at a fixed minimum interval.
///
/// Pushes falling within the same sampling interval overwrite the previous
/// value, so the series stays bounded regardless of event rate while the
/// last value in each interval (what a plotter wants) is retained.
///
/// # Example
///
/// ```
/// use rolo_metrics::Timeline;
/// use rolo_sim::{Duration, SimTime};
///
/// let mut tl = Timeline::new(Duration::from_secs(60));
/// tl.push(SimTime::from_secs(0), 0.0);
/// tl.push(SimTime::from_secs(30), 5.0);   // same minute: overwrites
/// tl.push(SimTime::from_secs(90), 9.0);
/// assert_eq!(tl.samples(), &[(SimTime::from_secs(0), 5.0), (SimTime::from_secs(90), 9.0)]);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Timeline {
    interval: Duration,
    points: Vec<(SimTime, f64)>,
}

impl Timeline {
    /// Creates a timeline with the given minimum sample spacing.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(interval: Duration) -> Self {
        assert!(!interval.is_zero(), "sampling interval must be positive");
        Timeline {
            interval,
            points: Vec::new(),
        }
    }

    /// Records `value` at `t`. If `t` falls within `interval` of the last
    /// retained sample, the last sample's value is updated in place.
    pub fn push(&mut self, t: SimTime, value: f64) {
        if let Some(last) = self.points.last_mut() {
            if t.since(last.0.min(t)) < self.interval && t >= last.0 {
                last.1 = value;
                return;
            }
        }
        self.points.push((t, value));
    }

    /// The retained samples, in time order.
    pub fn samples(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Largest recorded value, or `None` if empty.
    pub fn max_value(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|(_, v)| *v)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesces_within_interval() {
        let mut tl = Timeline::new(Duration::from_secs(10));
        tl.push(SimTime::from_secs(0), 1.0);
        tl.push(SimTime::from_secs(3), 2.0);
        tl.push(SimTime::from_secs(9), 3.0);
        tl.push(SimTime::from_secs(10), 4.0);
        assert_eq!(tl.len(), 2);
        assert_eq!(tl.samples()[0], (SimTime::from_secs(0), 3.0));
        assert_eq!(tl.samples()[1], (SimTime::from_secs(10), 4.0));
    }

    #[test]
    fn max_value() {
        let mut tl = Timeline::new(Duration::from_secs(1));
        assert!(tl.max_value().is_none());
        tl.push(SimTime::from_secs(0), 1.5);
        tl.push(SimTime::from_secs(5), -2.0);
        assert_eq!(tl.max_value(), Some(1.5));
    }

    #[test]
    #[should_panic(expected = "sampling interval must be positive")]
    fn zero_interval_rejected() {
        Timeline::new(Duration::ZERO);
    }

    #[test]
    fn bounded_under_heavy_push() {
        let mut tl = Timeline::new(Duration::from_secs(60));
        for i in 0..100_000u64 {
            tl.push(SimTime::from_millis(i * 10), i as f64);
        }
        // 1000 s of data at one sample per minute: ~17 points.
        assert!(tl.len() <= 18, "{}", tl.len());
    }
}
