#![warn(missing_docs)]
//! Statistics collection for the RoLo simulator.
//!
//! The paper's evaluation reports four families of measurements, each
//! served by one module here:
//!
//! * [`response`] — per-request response-time statistics (mean, extremes,
//!   percentiles) backing every "average response time" figure;
//! * [`histogram`] — the log-scaled latency histogram underlying the
//!   percentile queries;
//! * [`intervals`] — phase tracking for logging/destaging periods, from
//!   which the *destaging interval ratio* and *destaging energy ratio* of
//!   Fig. 2 are computed;
//! * [`timeline`] — sampled time-series (e.g. occupied logging capacity
//!   over time, Fig. 2a).
//!
//! Energy itself is metered per disk in `rolo-disk`; this crate supplies
//! the aggregation-side machinery.

pub mod histogram;
pub mod intervals;
pub mod response;
pub mod timeline;

pub use histogram::{exact_percentile, LatencyHistogram};
pub use intervals::{IntervalTracker, Phase, PhaseSummary};
pub use response::ResponseStats;
pub use timeline::Timeline;
