//! Streaming response-time statistics.

use crate::histogram::LatencyHistogram;
use rolo_sim::Duration;
use serde::{Deserialize, Serialize};

/// Streaming response-time statistics: count, mean (Welford), extremes,
/// plus a log-scaled histogram for percentile queries.
///
/// # Example
///
/// ```
/// use rolo_metrics::ResponseStats;
/// use rolo_sim::Duration;
///
/// let mut s = ResponseStats::new();
/// s.record(Duration::from_millis(2));
/// s.record(Duration::from_millis(4));
/// assert_eq!(s.count(), 2);
/// assert!((s.mean().as_millis_f64() - 3.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResponseStats {
    count: u64,
    mean_us: f64,
    m2_us: f64,
    min: Duration,
    max: Duration,
    histogram: LatencyHistogram,
}

impl Default for ResponseStats {
    fn default() -> Self {
        Self::new()
    }
}

impl ResponseStats {
    /// Creates an empty collector.
    pub fn new() -> Self {
        ResponseStats {
            count: 0,
            mean_us: 0.0,
            m2_us: 0.0,
            min: Duration::MAX,
            max: Duration::ZERO,
            histogram: LatencyHistogram::new(),
        }
    }

    /// Records one response time.
    pub fn record(&mut self, d: Duration) {
        self.count += 1;
        let x = d.as_micros() as f64;
        let delta = x - self.mean_us;
        self.mean_us += delta / self.count as f64;
        self.m2_us += delta * (x - self.mean_us);
        self.min = self.min.min(d);
        self.max = self.max.max(d);
        self.histogram.record(d);
    }

    /// Number of recorded responses.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean response time (zero if empty).
    pub fn mean(&self) -> Duration {
        Duration::from_micros(self.mean_us.round() as u64)
    }

    /// Mean as fractional milliseconds (the unit of Fig. 12).
    pub fn mean_ms(&self) -> f64 {
        self.mean_us / 1e3
    }

    /// Population standard deviation (zero if fewer than two samples).
    pub fn stddev(&self) -> Duration {
        if self.count < 2 {
            return Duration::ZERO;
        }
        Duration::from_micros((self.m2_us / self.count as f64).sqrt().round() as u64)
    }

    /// Fastest recorded response, or `None` if empty.
    pub fn min(&self) -> Option<Duration> {
        (self.count > 0).then_some(self.min)
    }

    /// Slowest recorded response, or `None` if empty.
    pub fn max(&self) -> Option<Duration> {
        (self.count > 0).then_some(self.max)
    }

    /// Percentile query via the underlying histogram.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<Duration> {
        self.histogram.percentile(p)
    }

    /// Merges another collector into this one. The merged mean/variance
    /// use the standard parallel-Welford combination.
    pub fn merge(&mut self, other: &ResponseStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean_us - self.mean_us;
        self.mean_us += delta * n2 / (n1 + n2);
        self.m2_us += other.m2_us + delta * delta * n1 * n2 / (n1 + n2);
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.histogram.merge(&other.histogram);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_stats() {
        let s = ResponseStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), Duration::ZERO);
        assert!(s.min().is_none());
        assert!(s.max().is_none());
        assert_eq!(s.stddev(), Duration::ZERO);
    }

    #[test]
    fn mean_and_extremes() {
        let mut s = ResponseStats::new();
        for ms in [1u64, 2, 3, 4, 5] {
            s.record(Duration::from_millis(ms));
        }
        assert_eq!(s.mean(), Duration::from_millis(3));
        assert_eq!(s.min().unwrap(), Duration::from_millis(1));
        assert_eq!(s.max().unwrap(), Duration::from_millis(5));
        // Population stddev of 1..5 ms = sqrt(2) ms.
        assert!((s.stddev().as_millis_f64() - 2.0f64.sqrt()).abs() < 0.01);
    }

    #[test]
    fn merge_equals_sequential() {
        let mut all = ResponseStats::new();
        let mut a = ResponseStats::new();
        let mut b = ResponseStats::new();
        for i in 0..100u64 {
            let d = Duration::from_micros(100 + i * 37);
            all.record(d);
            if i % 2 == 0 {
                a.record(d);
            } else {
                b.record(d);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean_ms() - all.mean_ms()).abs() < 1e-9);
        assert!((a.stddev().as_micros() as f64 - all.stddev().as_micros() as f64).abs() <= 1.0);
    }

    #[test]
    fn merge_with_empty() {
        let mut a = ResponseStats::new();
        a.record(Duration::from_millis(7));
        let b = ResponseStats::new();
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let mut c = ResponseStats::new();
        c.merge(&a);
        assert_eq!(c.count(), 1);
        assert_eq!(c.mean(), Duration::from_millis(7));
    }

    proptest! {
        #[test]
        fn prop_mean_within_extremes(values in proptest::collection::vec(1u64..10_000_000, 1..100)) {
            let mut s = ResponseStats::new();
            for v in &values {
                s.record(Duration::from_micros(*v));
            }
            prop_assert!(s.mean() >= s.min().unwrap());
            prop_assert!(s.mean() <= s.max().unwrap());
            prop_assert_eq!(s.count(), values.len() as u64);
        }
    }
}
