//! Criterion microbenchmarks of the simulator's hot paths, plus a
//! small end-to-end run per scheme. These guard the substrate's
//! throughput (a simulated week must stay in the seconds range).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rolo_core::ctx::WakeKind;
use rolo_core::logspace::LoggerSpace;
use rolo_core::{dirty::DirtyMap, Scheme, SimConfig, SimCtx};
use rolo_disk::{DiskParams, IoKind, Priority, ServiceModel};
use rolo_sim::{CalendarQueue, Duration, EventQueue, SimRng, SimTime};
use rolo_trace::SyntheticConfig;

fn bench_service_model(c: &mut Criterion) {
    c.bench_function("service_model_random_64k", |b| {
        let mut m = ServiceModel::new(DiskParams::ultrastar_36z15(), SimRng::seed_from(1));
        let mut rng = SimRng::seed_from(2);
        let cap = m.params().capacity_bytes - 64 * 1024;
        b.iter(|| {
            let off = rng.below(cap / 4096) * 4096;
            std::hint::black_box(m.service_time(off, 64 * 1024));
        });
    });
    c.bench_function("service_model_sequential_64k", |b| {
        let mut m = ServiceModel::new(DiskParams::ultrastar_36z15(), SimRng::seed_from(3));
        let mut off = 0u64;
        let cap = m.params().capacity_bytes;
        b.iter(|| {
            if off + 64 * 1024 > cap {
                off = 0;
            }
            std::hint::black_box(m.service_time(off, 64 * 1024));
            off += 64 * 1024;
        });
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_schedule_pop_1k", |b| {
        let mut rng = SimRng::seed_from(4);
        b.iter_batched(
            EventQueue::<u32>::new,
            |mut q| {
                for i in 0..1000u32 {
                    q.schedule(SimTime::from_micros(rng.below(1_000_000)), i);
                }
                while q.pop().is_some() {}
            },
            BatchSize::SmallInput,
        );
    });
    c.bench_function("calendar_queue_schedule_pop_1k", |b| {
        let mut rng = SimRng::seed_from(4);
        b.iter_batched(
            CalendarQueue::<u32>::new,
            |mut q| {
                for i in 0..1000u32 {
                    q.schedule(SimTime::from_micros(rng.below(1_000_000)), i);
                }
                while q.pop().is_some() {}
            },
            BatchSize::SmallInput,
        );
    });
    // Steady-state churn: the event-loop shape — pop one, schedule a
    // near-future follow-up — where the calendar's O(1) bucket insert
    // pays off over the heap's log n.
    c.bench_function("calendar_queue_churn_16k", |b| {
        let mut rng = SimRng::seed_from(14);
        b.iter_batched(
            || {
                let mut warm = SimRng::seed_from(15);
                let mut q = CalendarQueue::<u32>::new();
                for i in 0..64u32 {
                    q.schedule(SimTime::from_micros(warm.below(10_000)), i);
                }
                q
            },
            |mut q| {
                for i in 0..16_384u32 {
                    let ev = q.pop().expect("queue stays warm");
                    q.schedule(ev.time + Duration::from_micros(1 + rng.below(8_000)), i);
                }
            },
            BatchSize::SmallInput,
        );
    });
}

/// The submit → wake → deliver dispatch cycle through `SimCtx`, the
/// per-I/O path under every controller: slab registration, service-time
/// sampling, wake scheduling, and completion classification.
fn bench_dispatch(c: &mut Criterion) {
    c.bench_function("ctx_dispatch_cycle_1k", |b| {
        let cfg = SimConfig::paper_default(Scheme::Raid10, 4);
        let geo = cfg.geometry().expect("valid paper default");
        let standby = vec![false; cfg.disk_count()];
        b.iter_batched(
            || SimCtx::new(&cfg, geo.clone(), &standby),
            |mut ctx| {
                let disks = ctx.disk_count();
                let mut wakes = Vec::new();
                for i in 0..1000u64 {
                    let d = (i as usize) % disks;
                    ctx.submit(
                        d,
                        IoKind::Write,
                        (i % 512) * 4096,
                        4096,
                        Priority::Foreground,
                    );
                    ctx.drain_wakes_into(&mut wakes);
                    for (disk, wake) in wakes.drain(..) {
                        ctx.now = wake.due();
                        std::hint::black_box(ctx.deliver_wake(disk, WakeKind::Io));
                    }
                }
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_logspace(c: &mut Criterion) {
    c.bench_function("logspace_alloc_reclaim_cycle", |b| {
        b.iter_batched(
            || LoggerSpace::new(0, 64 << 20),
            |mut ls| {
                for i in 0..512 {
                    ls.alloc(64 * 1024, i % 8, (i / 64) as u64).unwrap();
                }
                for p in 0..8 {
                    ls.reclaim(|s| s.pair == p);
                }
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_dirty_map(c: &mut Criterion) {
    c.bench_function("dirty_map_mark_take", |b| {
        let mut rng = SimRng::seed_from(5);
        b.iter_batched(
            DirtyMap::new,
            |mut d| {
                for _ in 0..1000 {
                    d.mark(rng.below(1 << 30), 64 * 1024);
                }
                while d.take_next(512 * 1024).is_some() {}
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end_10min_4pairs");
    g.sample_size(10);
    for scheme in Scheme::all() {
        g.bench_function(scheme.to_string(), |b| {
            b.iter(|| {
                let mut cfg = SimConfig::paper_default(scheme, 4);
                cfg.logger_region = 64 << 20;
                cfg.graid_log_capacity = 128 << 20;
                let dur = Duration::from_secs(600);
                let wl = SyntheticConfig::motivation_write_only(50.0);
                let r = rolo_core::run_scheme(&cfg, wl.generator(dur, 6), dur);
                assert!(r.consistency.is_ok());
                std::hint::black_box(r.total_energy_j)
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_service_model,
    bench_event_queue,
    bench_dispatch,
    bench_logspace,
    bench_dirty_map,
    bench_end_to_end
);
criterion_main!(benches);
