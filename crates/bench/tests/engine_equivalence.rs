//! Golden engine-equivalence fixtures: the hot-path engine rewrite
//! (calendar event queue, slab-allocated I/O state, batched RNG draws)
//! must not change a single observable byte. This suite replays every
//! scheme over the two BENCH_sim traces — with span recording on and
//! off, and with the background scrub on and off — and compares the
//! FNV-1a digest of each run's `deterministic_json` against the digests
//! committed under `baselines/engine/golden.txt`, which were generated
//! by the pre-rewrite (binary-heap, HashMap-everywhere) engine.
//!
//! Any digest drift fails CI until the baseline is deliberately
//! re-blessed with `ROLO_BLESS_GOLDEN=1 cargo test -p rolo-bench
//! --test engine_equivalence` — an intentional model change, never a
//! silent engine divergence.

use rolo_bench::fnv1a_hex;
use rolo_core::{run_scheme, run_scheme_spanned, Scheme, SimConfig};
use rolo_sim::Duration;
use rolo_trace::{profiles, TraceRecord};
use std::collections::BTreeMap;
use std::path::PathBuf;

const TRACES: [&str; 2] = ["src2_2", "hm_1"];

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../baselines/engine/golden.txt")
}

fn cfg(scheme: Scheme, scrub: bool) -> SimConfig {
    let mut cfg = SimConfig::paper_default(scheme, 4);
    cfg.logger_region = 64 << 20;
    cfg.graid_log_capacity = 96 << 20;
    cfg.scrub_enabled = scrub;
    cfg
}

fn workload(trace: &str, dur: Duration, seed: u64) -> Vec<TraceRecord> {
    profiles::by_name(trace)
        .expect("known trace profile")
        .generator(dur, seed)
        .collect()
}

/// Runs the full matrix and returns `key → digest`, sorted by key.
fn current_digests() -> BTreeMap<String, String> {
    let dur = Duration::from_secs(900);
    let mut out = BTreeMap::new();
    for scheme in Scheme::all() {
        for trace in TRACES {
            let records = workload(trace, dur, 42);
            for scrub in [false, true] {
                for spans in [false, true] {
                    let c = cfg(scheme, scrub);
                    let json = if spans {
                        let (report, _) = run_scheme_spanned(&c, records.clone(), dur);
                        report.deterministic_json()
                    } else {
                        run_scheme(&c, records.clone(), dur).deterministic_json()
                    };
                    let key = format!(
                        "{scheme}/{trace}/spans={}/scrub={}",
                        if spans { "on" } else { "off" },
                        if scrub { "on" } else { "off" },
                    );
                    out.insert(key, fnv1a_hex(json.as_bytes()));
                }
            }
        }
    }
    out
}

fn parse_golden(text: &str) -> BTreeMap<String, String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let (key, digest) = l.split_once(' ').expect("golden line is `<key> <digest>`");
            (key.to_owned(), digest.trim().to_owned())
        })
        .collect()
}

fn render_golden(digests: &BTreeMap<String, String>) -> String {
    let mut out = String::from(
        "# deterministic_json FNV-1a digests of the pre-rewrite engine\n\
         # (5 schemes x {src2_2, hm_1} x spans on/off x scrub on/off,\n\
         # 900 simulated seconds, 4 pairs, seed 42). Regenerate with\n\
         # ROLO_BLESS_GOLDEN=1 cargo test -p rolo-bench --test engine_equivalence\n",
    );
    for (k, v) in digests {
        out.push_str(&format!("{k} {v}\n"));
    }
    out
}

#[test]
fn engine_reproduces_golden_digests() {
    let current = current_digests();
    let path = golden_path();
    if std::env::var("ROLO_BLESS_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create baselines/engine");
        std::fs::write(&path, render_golden(&current)).expect("write golden digests");
        println!("blessed {} digests to {}", current.len(), path.display());
        return;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); bless it with ROLO_BLESS_GOLDEN=1",
            path.display()
        )
    });
    let golden = parse_golden(&text);
    assert_eq!(
        golden.len(),
        current.len(),
        "golden fixture covers a different matrix; re-bless deliberately"
    );
    let mut drifted = Vec::new();
    for (key, want) in &golden {
        let got = current.get(key).expect("matrix sizes already matched");
        if got != want {
            drifted.push(format!("{key}: {got} != golden {want}"));
        }
    }
    assert!(
        drifted.is_empty(),
        "engine output drifted from the pre-rewrite bytes for {} cell(s):\n{}",
        drifted.len(),
        drifted.join("\n")
    );
}
