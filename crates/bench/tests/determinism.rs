//! Determinism lock-down: the same seed and config must yield the same
//! report and the same trace-event sequence, no matter how the runs are
//! scheduled.
//!
//! `SimReport::deterministic_json` strips the one intentionally
//! non-deterministic field (the wall-clock `RunProfile`), so two
//! equivalent runs must serialize byte-identically — across repeated
//! runs, across serial vs `run_jobs` parallel execution, and with
//! tracing on vs off.

use rolo_bench::{run_jobs, run_records, RunJob};
use rolo_core::{run_scheme_with_sink, Scheme, SimConfig};
use rolo_obs::{RingSink, TracedEvent};
use rolo_sim::Duration;
use rolo_trace::{profiles, TraceRecord};

fn small_cfg(scheme: Scheme) -> SimConfig {
    let mut cfg = SimConfig::paper_default(scheme, 4);
    cfg.logger_region = 64 << 20;
    cfg.graid_log_capacity = 96 << 20;
    cfg
}

fn workload(dur: Duration, seed: u64) -> Vec<TraceRecord> {
    profiles::src2_2().generator(dur, seed).collect()
}

#[test]
fn parallel_run_jobs_matches_serial() {
    let dur = Duration::from_secs(900);
    let records = workload(dur, 42);
    let jobs: Vec<RunJob> = Scheme::all()
        .into_iter()
        .map(|scheme| RunJob {
            cfg: small_cfg(scheme),
            records: records.clone(),
            duration: dur,
        })
        .collect();
    let serial: Vec<String> = jobs
        .iter()
        .map(|j| run_records(&j.cfg, j.records.clone(), j.duration).deterministic_json())
        .collect();
    let parallel = run_jobs(jobs);
    assert_eq!(parallel.len(), serial.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(
            s,
            &p.deterministic_json(),
            "parallel run diverged from serial for {}",
            p.scheme
        );
    }
}

#[test]
fn repeated_runs_are_byte_identical() {
    let dur = Duration::from_secs(900);
    for scheme in [Scheme::RoloP, Scheme::Graid] {
        let a = run_records(&small_cfg(scheme), workload(dur, 7), dur);
        let b = run_records(&small_cfg(scheme), workload(dur, 7), dur);
        assert_eq!(
            a.deterministic_json(),
            b.deterministic_json(),
            "{scheme} is not deterministic"
        );
    }
}

#[test]
fn trace_event_sequence_is_deterministic() {
    let dur = Duration::from_secs(900);
    let run = || -> (String, Vec<TracedEvent>) {
        let cfg = small_cfg(Scheme::RoloP);
        let (report, mut sink) = run_scheme_with_sink(
            &cfg,
            workload(dur, 21),
            dur,
            Box::new(RingSink::new(1 << 20)),
        );
        (report.deterministic_json(), sink.drain())
    };
    let (ja, ea) = run();
    let (jb, eb) = run();
    assert_eq!(ja, jb, "reports diverged");
    assert_eq!(ea.len(), eb.len(), "event counts diverged");
    assert_eq!(ea, eb, "event sequences diverged");
    assert!(!ea.is_empty(), "tracing recorded nothing");
    // Tracing on vs off: identical deterministic report.
    let cfg = small_cfg(Scheme::RoloP);
    let untraced = run_records(&cfg, workload(dur, 21), dur);
    assert_eq!(
        ja,
        untraced.deterministic_json(),
        "enabling tracing changed the simulation"
    );
}

#[test]
fn telemetry_does_not_perturb_the_simulation() {
    let dur = Duration::from_secs(900);
    for scheme in Scheme::all() {
        let cfg_on = small_cfg(scheme);
        assert!(cfg_on.telemetry_enabled, "telemetry is on by default");
        let mut cfg_off = small_cfg(scheme);
        cfg_off.telemetry_enabled = false;
        let on = run_records(&cfg_on, workload(dur, 33), dur);
        let off = run_records(&cfg_off, workload(dur, 33), dur);
        assert_eq!(
            on.deterministic_json(),
            off.deterministic_json(),
            "telemetry changed the simulation for {scheme}"
        );
    }
    // The out-of-band observations themselves are deterministic: two
    // identical runs export identical snapshots and alert lists.
    let cfg = small_cfg(Scheme::RoloE);
    let observe = || {
        let (_, obs) = rolo_core::run_scheme_observed(
            &cfg,
            workload(dur, 33),
            dur,
            Box::new(rolo_obs::NullSink),
            false,
        );
        (obs.telemetry.expect("telemetry on"), obs.slo_alerts)
    };
    let (snap_a, alerts_a) = observe();
    let (snap_b, alerts_b) = observe();
    assert_eq!(snap_a, snap_b, "telemetry snapshots diverged");
    assert_eq!(alerts_a, alerts_b, "SLO alerts diverged");
}

#[test]
fn forensics_do_not_perturb_the_simulation() {
    let dur = Duration::from_secs(900);
    for scheme in Scheme::all() {
        // Forensics fully on (exemplars + RCA, which force-enables
        // span recording) vs fully off: the deterministic report must
        // not move by a byte.
        let mut cfg_on = small_cfg(scheme);
        cfg_on.rca_enabled = true;
        assert!(cfg_on.exemplars_per_window > 0, "exemplars on by default");
        let mut cfg_off = small_cfg(scheme);
        cfg_off.exemplars_per_window = 0;
        cfg_off.rca_enabled = false;
        let observe = |cfg: &SimConfig| {
            rolo_core::run_scheme_observed(
                cfg,
                workload(dur, 51),
                dur,
                Box::new(rolo_obs::NullSink),
                false,
            )
        };
        let (on, obs_on) = observe(&cfg_on);
        let (off, obs_off) = observe(&cfg_off);
        assert_eq!(
            on.deterministic_json(),
            off.deterministic_json(),
            "tail forensics changed the simulation for {scheme}"
        );
        assert!(
            obs_on.rca.is_some(),
            "{scheme}: rca_enabled exports a report"
        );
        assert!(
            obs_off.exemplars.is_none(),
            "{scheme}: k = 0 disables capture"
        );
        // The forensics exports themselves are deterministic.
        let (_, obs_again) = observe(&cfg_on);
        assert_eq!(
            obs_on.exemplars, obs_again.exemplars,
            "{scheme}: exemplars diverged"
        );
        assert_eq!(obs_on.rca, obs_again.rca, "{scheme}: RCA reports diverged");
    }
}

#[test]
fn span_recording_does_not_perturb_the_simulation() {
    let dur = Duration::from_secs(900);
    for scheme in Scheme::all() {
        let cfg = small_cfg(scheme);
        let plain = run_records(&cfg, workload(dur, 13), dur);
        let (spanned, spans) = rolo_core::run_scheme_spanned(&cfg, workload(dur, 13), dur);
        assert_eq!(
            plain.deterministic_json(),
            spanned.deterministic_json(),
            "span recording changed the simulation for {scheme}"
        );
        assert_eq!(
            spans.requests.len() as u64,
            spanned.user_requests,
            "{scheme}: every completed request must yield a span"
        );
        spans.validate().expect("span invariants");
        // The spans really measure the same runtime the report does:
        // summed span durations equal summed response times.
        let span_us: u64 = spans
            .requests
            .iter()
            .map(|s| s.duration().as_micros())
            .sum();
        let mean_ms = span_us as f64 / 1e3 / spanned.user_requests as f64;
        assert!(
            (mean_ms - spanned.mean_response_ms()).abs() < 1e-6,
            "{scheme}: span durations diverge from response stats \
             ({mean_ms} vs {})",
            spanned.mean_response_ms()
        );
    }
}
