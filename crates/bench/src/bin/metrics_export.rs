//! Exports one observed run as machine-readable telemetry artifacts
//! (DESIGN.md §12): an OpenMetrics text exposition, a JSONL window
//! timeline, and a full export JSON that `trace_diff` consumes.
//!
//! ```text
//! metrics_export [scheme] [trace] [hours] [--seed S] [--pairs N]
//!                [--tag NAME] [--out-dir DIR]
//! ```
//!
//! * `scheme` — raid10 | graid | rolo-p | rolo-r | rolo-e (default rolo-p)
//! * `trace`  — a Table III profile name (default src2_2)
//! * `hours`  — simulated window (default 1)
//! * `--tag`  — artifact basename (default `<scheme>_<trace>`)
//! * `--out-dir` — output directory (default `results/metrics_export`)
//!
//! Artifacts, all deterministic for a fixed (scheme, trace, hours,
//! seed, pairs):
//!
//! * `<tag>.om` — OpenMetrics text. Counters export their cumulative
//!   total over retained windows, gauges their final level, quantile
//!   series an OpenMetrics summary whose quantile values come from the
//!   freshest non-idle window (summaries are windowed by convention)
//!   and whose `_count`/`_sum` cover all retained windows. Every
//!   sample carries `scheme`/`trace` labels. Latency-quantile sample
//!   lines additionally carry an OpenMetrics exemplar annotation
//!   (`... # {rid="...",phase="..."} <response_us> <ts>`) naming a
//!   real tail request captured in the same window by the exemplar
//!   recorder (DESIGN.md §14): higher quantiles reference slower
//!   exemplars, so a p99 sample points at the window's slowest
//!   request and its dominant critical-path phase.
//! * `<tag>.timeline.jsonl` — one line per (series, closed window):
//!   the raw `WindowRollup` with its series label, for offline rollup
//!   tooling.
//! * `<tag>.json` — the trace_diff input: run metadata, report
//!   headline numbers, the full telemetry snapshot, per-window FNV-1a
//!   checksums of the emitted event stream (the divergence-point
//!   probe), the critical-path phase attribution, and the SLO alert
//!   list.

use rolo_core::{run_scheme_observed, Scheme, SimConfig, SimReport};
use rolo_obs::{
    AttributionSummary, ExemplarSet, RingSink, RollupValue, SeriesKind, SloAlert, SpanAnalysis,
    TelemetrySnapshot, TracedEvent,
};
use rolo_sim::Duration;
use serde::Serialize;
use std::io::Write;
use std::path::PathBuf;

/// Matches trace_dump: big enough that multi-hour runs never wrap.
const RING_CAPACITY: usize = 2_000_000;

struct Args {
    scheme: Scheme,
    scheme_arg: String,
    trace: String,
    hours: f64,
    seed: u64,
    pairs: usize,
    tag: Option<String>,
    out_dir: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        scheme: Scheme::RoloP,
        scheme_arg: "rolo-p".to_owned(),
        trace: "src2_2".to_owned(),
        hours: 1.0,
        seed: 1,
        pairs: 4,
        tag: None,
        out_dir: None,
    };
    let mut positional = 0;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--seed" => args.seed = val("--seed").parse().expect("seed"),
            "--pairs" => args.pairs = val("--pairs").parse().expect("pairs"),
            "--tag" => args.tag = Some(val("--tag")),
            "--out-dir" => args.out_dir = Some(val("--out-dir")),
            "--help" | "-h" => {
                eprintln!("see the module docs at the top of metrics_export.rs");
                std::process::exit(0);
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
            other => {
                match positional {
                    0 => {
                        args.scheme = match other {
                            "raid10" => Scheme::Raid10,
                            "graid" => Scheme::Graid,
                            "rolo-p" => Scheme::RoloP,
                            "rolo-r" => Scheme::RoloR,
                            "rolo-e" => Scheme::RoloE,
                            _ => {
                                eprintln!("unknown scheme {other}");
                                std::process::exit(2);
                            }
                        };
                        args.scheme_arg = other.to_owned();
                    }
                    1 => args.trace = other.to_owned(),
                    2 => args.hours = other.parse().expect("hours"),
                    _ => {
                        eprintln!("too many positional arguments");
                        std::process::exit(2);
                    }
                }
                positional += 1;
            }
        }
    }
    args
}

/// FNV-1a 64-bit, the divergence-probe hash: stable, dependency-free,
/// and cheap enough to fold every event line.
fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    let mut h = hash;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// One telemetry window's event-stream fingerprint.
#[derive(Debug, Clone, Serialize)]
struct WindowChecksum {
    /// Window index (same clock as the telemetry snapshot).
    window: u64,
    /// Events emitted in the window.
    events: u64,
    /// FNV-1a over the window's serialized event lines, in order.
    fnv: u64,
}

/// Headline report numbers worth diffing between runs.
#[derive(Debug, Clone, Serialize)]
struct ReportSummary {
    scheme: String,
    user_requests: u64,
    mean_response_ms: f64,
    p95_response_ms: f64,
    p99_response_ms: f64,
    total_energy_j: f64,
    spin_cycles: u64,
}

#[derive(Debug, Clone, Serialize)]
struct ExportMeta {
    scheme: String,
    trace: String,
    hours: f64,
    seed: u64,
    pairs: usize,
    window_us: u64,
    events_recorded: u64,
    events_dropped: u64,
}

/// The trace_diff input document.
#[derive(Debug, Serialize)]
struct Export {
    meta: ExportMeta,
    report: ReportSummary,
    telemetry: TelemetrySnapshot,
    event_checksums: Vec<WindowChecksum>,
    phases: AttributionSummary,
    slo_alerts: Vec<SloAlert>,
}

/// One `<tag>.timeline.jsonl` line.
#[derive(Debug, Serialize)]
struct TimelineLine {
    series: String,
    kind: SeriesKind,
    window: u64,
    start_us: u64,
    value: RollupValue,
}

fn window_checksums(events: &[TracedEvent], window_us: u64) -> Vec<WindowChecksum> {
    let mut out: Vec<WindowChecksum> = Vec::new();
    for ev in events {
        let window = ev.at.as_micros() / window_us;
        let line = Serialize::to_value(ev).to_string();
        match out.last_mut() {
            Some(last) if last.window == window => {
                last.events += 1;
                last.fnv = fnv1a(last.fnv, line.as_bytes());
            }
            _ => out.push(WindowChecksum {
                window,
                events: 1,
                fnv: fnv1a(FNV_OFFSET, line.as_bytes()),
            }),
        }
    }
    out
}

/// `sim.response_us` → `rolo_sim_response_us` (OpenMetrics name
/// charset).
fn om_name(series: &str) -> String {
    let mut n = String::from("rolo_");
    for c in series.chars() {
        n.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    n
}

fn om_labels(meta: &ExportMeta, extra: Option<(&str, &str)>) -> String {
    let mut l = format!("scheme=\"{}\",trace=\"{}\"", meta.scheme, meta.trace);
    if let Some((k, v)) = extra {
        l.push_str(&format!(",{k}=\"{v}\""));
    }
    l
}

/// The exemplar annotation for one quantile sample line, OpenMetrics
/// exemplar syntax: `# {rid="...",phase="..."} <value> <ts>`. Higher
/// quantiles get slower exemplars (`rank` 0 = the window's slowest),
/// clamped to what the window retained.
fn om_exemplar(exemplars: Option<&rolo_obs::WindowExemplars>, rank: usize) -> String {
    let Some(we) = exemplars else {
        return String::new();
    };
    let Some(e) = we.spans.get(rank.min(we.spans.len().saturating_sub(1))) else {
        return String::new();
    };
    let phase = e.dominant_phase().map(|p| p.name()).unwrap_or("-");
    format!(
        " # {{rid=\"{}\",phase=\"{phase}\"}} {} {}",
        e.rid,
        e.response_us,
        e.completed.as_micros() as f64 / 1e6
    )
}

/// Renders the OpenMetrics exposition: every telemetry series plus the
/// report headline numbers, `# EOF`-terminated per the spec.
fn render_openmetrics(
    meta: &ExportMeta,
    report: &ReportSummary,
    snap: &TelemetrySnapshot,
    exemplars: Option<&ExemplarSet>,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let labels = om_labels(meta, None);
    for s in &snap.series {
        let name = om_name(&s.name);
        match s.kind {
            SeriesKind::Counter => {
                let total: f64 = s
                    .windows
                    .iter()
                    .map(|w| match &w.value {
                        RollupValue::Counter { delta } => *delta,
                        _ => 0.0,
                    })
                    .sum();
                let _ = writeln!(out, "# TYPE {name} counter");
                let _ = writeln!(out, "{name}_total{{{labels}}} {total}");
            }
            SeriesKind::Gauge => {
                let last = s
                    .windows
                    .iter()
                    .rev()
                    .find_map(|w| match &w.value {
                        RollupValue::Gauge { last, .. } => Some(*last),
                        _ => None,
                    })
                    .unwrap_or(0.0);
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(out, "{name}{{{labels}}} {last}");
            }
            SeriesKind::Quantile => {
                // Quantile values come from the freshest non-idle
                // window; count/sum aggregate every retained window.
                let mut count = 0u64;
                let mut sum = 0.0;
                let mut fresh = None;
                for w in &s.windows {
                    if let RollupValue::Quantile(d) = &w.value {
                        count += d.count;
                        sum += d.sum;
                        if d.count > 0 {
                            fresh = Some((w.window, d));
                        }
                    }
                }
                let _ = writeln!(out, "# TYPE {name} summary");
                if let Some((fw, d)) = fresh {
                    // Tail exemplars captured in the same window the
                    // quantile values come from, slowest-first; rank 0
                    // annotates the highest quantile.
                    let wexm = exemplars.and_then(|e| e.window(fw));
                    for (q, v, rank) in [
                        ("0.5", d.p50, 3usize),
                        ("0.9", d.p90, 2),
                        ("0.95", d.p95, 1),
                        ("0.99", d.p99, 0),
                    ] {
                        if let Some(v) = v {
                            let ql = om_labels(meta, Some(("quantile", q)));
                            let exm = om_exemplar(wexm, rank);
                            let _ = writeln!(out, "{name}{{{ql}}} {v}{exm}");
                        }
                    }
                }
                let _ = writeln!(out, "{name}_count{{{labels}}} {count}");
                let _ = writeln!(out, "{name}_sum{{{labels}}} {sum}");
            }
        }
    }
    let _ = writeln!(out, "# TYPE rolo_report_mean_response_ms gauge");
    let _ = writeln!(
        out,
        "rolo_report_mean_response_ms{{{labels}}} {}",
        report.mean_response_ms
    );
    let _ = writeln!(out, "# TYPE rolo_report_user_requests counter");
    let _ = writeln!(
        out,
        "rolo_report_user_requests_total{{{labels}}} {}",
        report.user_requests
    );
    let _ = writeln!(out, "# TYPE rolo_report_energy_joules counter");
    let _ = writeln!(
        out,
        "rolo_report_energy_joules_total{{{labels}}} {}",
        report.total_energy_j
    );
    out.push_str("# EOF\n");
    out
}

fn summarize(report: &SimReport) -> ReportSummary {
    let pct_ms = |p: f64| {
        report
            .responses
            .percentile(p)
            .map_or(0.0, |d| d.as_micros() as f64 / 1e3)
    };
    ReportSummary {
        scheme: report.scheme.clone(),
        user_requests: report.user_requests,
        mean_response_ms: report.mean_response_ms(),
        p95_response_ms: pct_ms(95.0),
        p99_response_ms: pct_ms(99.0),
        total_energy_j: report.total_energy_j,
        spin_cycles: report.spin_cycles,
    }
}

fn main() {
    let args = parse_args();
    let mut cfg = SimConfig::paper_default(args.scheme, args.pairs);
    cfg.seed = args.seed;
    if !cfg.telemetry_enabled {
        eprintln!("telemetry must be enabled for metrics_export");
        std::process::exit(2);
    }
    let profile = rolo_trace::profiles::by_name(&args.trace).unwrap_or_else(|| {
        eprintln!("unknown trace profile {}", args.trace);
        std::process::exit(2);
    });
    let dur = Duration::from_secs((args.hours * 3600.0) as u64);
    let records = profile.generator(dur, cfg.seed).collect::<Vec<_>>();

    let (report, mut obs) = run_scheme_observed(
        &cfg,
        records,
        dur,
        Box::new(RingSink::new(RING_CAPACITY)),
        true,
    );
    let recorded = obs.sink.recorded();
    let dropped = obs.sink.dropped();
    if dropped > 0 {
        eprintln!("warning: ring overflowed, {dropped} oldest events lost — checksums cover the retained tail only");
    }
    let events = obs.sink.drain();
    let snap = obs.telemetry.take().expect("telemetry enabled");
    let exemplars = obs.exemplars.take();
    let spans = obs.spans.take().expect("spans requested");
    let phases = SpanAnalysis::analyze(&spans.requests).all.summary();

    let meta = ExportMeta {
        scheme: report.scheme.clone(),
        trace: args.trace.clone(),
        hours: args.hours,
        seed: args.seed,
        pairs: args.pairs,
        window_us: snap.window_us,
        events_recorded: recorded,
        events_dropped: dropped,
    };
    let summary = summarize(&report);
    let checksums = window_checksums(&events, snap.window_us);

    let dir: PathBuf = args
        .out_dir
        .clone()
        .map(PathBuf::from)
        .unwrap_or_else(|| rolo_bench::results_dir().join("metrics_export"));
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| {
        eprintln!("cannot create {}: {e}", dir.display());
        std::process::exit(1);
    });
    let tag = args
        .tag
        .clone()
        .unwrap_or_else(|| format!("{}_{}", args.scheme_arg, args.trace));

    // OpenMetrics exposition.
    let om_path = dir.join(format!("{tag}.om"));
    let om = render_openmetrics(&meta, &summary, &snap, exemplars.as_ref());
    std::fs::write(&om_path, &om).expect("write OpenMetrics file");

    // Window timeline, one rollup per line.
    let tl_path = dir.join(format!("{tag}.timeline.jsonl"));
    let mut tl = std::fs::File::create(&tl_path).expect("create timeline");
    let mut timeline_lines = 0u64;
    for s in &snap.series {
        for w in &s.windows {
            let line = TimelineLine {
                series: s.name.clone(),
                kind: s.kind,
                window: w.window,
                start_us: w.start.as_micros(),
                value: w.value.clone(),
            };
            writeln!(tl, "{}", Serialize::to_value(&line)).expect("write timeline line");
            timeline_lines += 1;
        }
    }
    drop(tl);

    // The trace_diff input document.
    let export = Export {
        meta,
        report: summary,
        telemetry: snap,
        event_checksums: checksums,
        phases,
        slo_alerts: obs.slo_alerts,
    };
    let json_path = dir.join(format!("{tag}.json"));
    std::fs::write(&json_path, Serialize::to_value(&export).to_string())
        .expect("write export JSON");

    println!(
        "{}: {} series / {} timeline rollups / {} windows checksummed / {} SLO alerts",
        export.meta.scheme,
        export.telemetry.series.len(),
        timeline_lines,
        export.event_checksums.len(),
        export.slo_alerts.len()
    );
    println!("  {}", om_path.display());
    println!("  {}", tl_path.display());
    println!("  {}", json_path.display());
}
