//! §II's idleness claim, measured: *"Most idle time slots are much
//! shorter than the break-even time for modern disks to spin down"*.
//!
//! Drives one primary disk with its share of the motivation workload
//! (100 % writes, 64 KB, a tenth of the array's intensity) and reports
//! the distribution of spun-up idle-slot lengths against the disk's
//! spin-down break-even time — the observation that motivates exploiting
//! idle slots for destaging instead of spin-down.

use rolo_bench::write_results;
use rolo_disk::{Disk, DiskParams, DiskRequest, IoKind, Priority};
use rolo_sim::{Duration, SimRng, SimTime};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    iops: f64,
    idle_slots: u64,
    mean_slot_ms: f64,
    fraction_under_break_even: f64,
    fraction_under_100ms: f64,
}

fn tally(array_iops: f64) -> Row {
    // One primary disk sees a tenth of a 10-pair array's write stream.
    let mut disk = Disk::new(0, DiskParams::ultrastar_36z15(), SimRng::seed_from(7));
    let mut rng = SimRng::seed_from(9);
    let per_disk = array_iops / 10.0;
    let mut t = 0.0f64;
    let mut next_free = SimTime::ZERO;
    for i in 0..200_000u64 {
        t += rng.exp(1.0 / per_disk);
        let now = SimTime::from_micros((t * 1e6) as u64).max(next_free);
        let offset = rng.below((10u64 << 30) / 4096) * 4096;
        let w = disk
            .submit(
                DiskRequest::new(i, IoKind::Write, offset, 64 * 1024, Priority::Foreground),
                now,
            )
            .expect("disk idle between requests");
        next_free = w.due();
        disk.on_io_complete(next_free);
    }
    let be = disk.params().break_even_time();
    let h = disk.io_stats().idle_gaps;
    Row {
        iops: array_iops,
        idle_slots: h.count,
        mean_slot_ms: h.mean().as_millis_f64(),
        fraction_under_break_even: h.fraction_shorter_than(be),
        fraction_under_100ms: h.fraction_shorter_than(Duration::from_millis(100)),
    }
}

fn main() {
    let be = DiskParams::ultrastar_36z15().break_even_time();
    let rows: Vec<Row> = [10.0, 50.0, 100.0, 200.0].into_iter().map(tally).collect();

    println!("§II idleness: primary-disk idle slots vs the spin-down break-even ({be})\n");
    println!(
        "{:>6} {:>10} {:>12} {:>16} {:>12}",
        "iops", "slots", "mean slot", "< break-even", "< 100ms"
    );
    for r in &rows {
        println!(
            "{:>6} {:>10} {:>10.1}ms {:>15.2}% {:>11.1}%",
            r.iops,
            r.idle_slots,
            r.mean_slot_ms,
            r.fraction_under_break_even * 100.0,
            r.fraction_under_100ms * 100.0
        );
    }
    println!("\n(virtually every idle slot is far below the ~15 s break-even: spinning");
    println!(" down between requests can never pay — the slots are only exploitable");
    println!(" by background work, which is exactly what decentralized destaging does)");
    write_results("idle_slots", &rows);
}
