//! Replays one scheme/trace combination with tracing on and dumps the
//! recorded event stream as JSONL, plus a per-disk power-state residency
//! table and per-kind event counts (DESIGN.md §9).
//!
//! ```text
//! trace_dump [scheme] [trace] [hours] [--seed S] [--pairs N]
//!            [--out PATH] [--check]
//! ```
//!
//! * `scheme` — raid10 | graid | rolo-p | rolo-r | rolo-e (default rolo-p)
//! * `trace`  — a Table III profile name (default src2_2)
//! * `hours`  — simulated window (default 1)
//! * `--out`  — JSONL output path (default `results/trace_dump.jsonl`)
//! * `--scrub` — shrink the disks, enable the background scrub and
//!   latent-error injection (DESIGN.md §11) so scrub events appear in
//!   the stream.
//! * `--slo` — print the scheme's SLO burn/breach summary (per
//!   objective: warnings, breaches, first firing windows, peak burn)
//!   from the run's `SloBurnWarning`/`SloBreach` events (DESIGN.md
//!   §12).
//! * `--check` — re-parse every emitted line with the vendored JSON
//!   parser and validate that events touching the same disk carry
//!   non-decreasing timestamps; exit non-zero on any malformed line or
//!   time-travel (the CI guard). With `--scrub` it additionally checks
//!   the scrub lifecycle: per disk, every pass opens with `ScrubStart`,
//!   repairs land only inside an open pass, `ScrubComplete` closes the
//!   pass it opened, and no scrub event ever touches a disk whose
//!   tracked power state is spun down. It always checks the SLO alert
//!   lifecycle — within one telemetry window a `SloBreach` must be
//!   preceded by that objective's `SloBurnWarning` — and with `--slo`
//!   on RoLo-E (the scheme the pipeline exists to flag) it fails if
//!   the run produced no SLO events at all (vacuous check).

use rolo_core::{run_scheme_with_sink, Scheme, SimConfig};
use rolo_obs::{RingSink, TracedEvent};
use rolo_sim::Duration;
use serde::Serialize;
use std::collections::BTreeMap;
use std::io::Write;

/// Ring capacity: large enough to hold every event of a multi-hour run
/// of any scheme; overflow is reported, not silent.
const RING_CAPACITY: usize = 2_000_000;

struct Args {
    scheme: Scheme,
    trace: String,
    hours: f64,
    seed: u64,
    pairs: usize,
    out: Option<String>,
    check: bool,
    scrub: bool,
    slo: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        scheme: Scheme::RoloP,
        trace: "src2_2".to_owned(),
        hours: 1.0,
        seed: 1,
        pairs: 4,
        out: None,
        check: false,
        scrub: false,
        slo: false,
    };
    let mut positional = 0;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--seed" => args.seed = val("--seed").parse().expect("seed"),
            "--pairs" => args.pairs = val("--pairs").parse().expect("pairs"),
            "--out" => args.out = Some(val("--out")),
            "--check" => args.check = true,
            "--scrub" => args.scrub = true,
            "--slo" => args.slo = true,
            "--help" | "-h" => {
                eprintln!("see the module docs at the top of trace_dump.rs");
                std::process::exit(0);
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
            other => {
                match positional {
                    0 => {
                        args.scheme = match other {
                            "raid10" => Scheme::Raid10,
                            "graid" => Scheme::Graid,
                            "rolo-p" => Scheme::RoloP,
                            "rolo-r" => Scheme::RoloR,
                            "rolo-e" => Scheme::RoloE,
                            _ => {
                                eprintln!("unknown scheme {other}");
                                std::process::exit(2);
                            }
                        }
                    }
                    1 => args.trace = other.to_owned(),
                    2 => args.hours = other.parse().expect("hours"),
                    _ => {
                        eprintln!("too many positional arguments");
                        std::process::exit(2);
                    }
                }
                positional += 1;
            }
        }
    }
    args
}

/// Accumulates per-disk residency in each power state from the
/// `DiskInit`/`DiskState` events of a trace.
#[derive(Default)]
struct Residency {
    /// disk → (current state, since-micros).
    current: BTreeMap<usize, (String, u64)>,
    /// (disk, state) → accumulated micros.
    acc: BTreeMap<(usize, String), u64>,
}

impl Residency {
    fn observe(&mut self, ev: &TracedEvent) {
        use rolo_obs::SimEvent;
        let at = ev.at.as_micros();
        match &ev.event {
            SimEvent::DiskInit { disk, state } => {
                self.current.insert(*disk, (format!("{state:?}"), at));
            }
            SimEvent::DiskState { disk, to, .. } => {
                if let Some((state, since)) = self.current.remove(disk) {
                    *self.acc.entry((*disk, state)).or_default() += at - since;
                }
                self.current.insert(*disk, (format!("{to:?}"), at));
            }
            _ => {}
        }
    }

    fn finish(&mut self, end_micros: u64) {
        for (disk, (state, since)) in std::mem::take(&mut self.current) {
            *self.acc.entry((disk, state)).or_default() += end_micros.saturating_sub(since);
        }
    }

    fn print(&self) {
        const STATES: [&str; 5] = ["Active", "Idle", "Standby", "SpinningUp", "SpinningDown"];
        println!("\nper-disk state residency (seconds):");
        println!(
            "{:>5} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "disk", "active", "idle", "standby", "spin-up", "spin-down"
        );
        let disks: Vec<usize> = {
            let mut d: Vec<usize> = self.acc.keys().map(|&(disk, _)| disk).collect();
            d.dedup();
            d
        };
        for disk in disks {
            let secs = |state: &str| {
                self.acc
                    .get(&(disk, state.to_owned()))
                    .copied()
                    .unwrap_or(0) as f64
                    / 1e6
            };
            print!("{disk:>5}");
            for s in STATES {
                print!(" {:>12.1}", secs(s));
            }
            println!();
        }
    }
}

fn main() {
    let args = parse_args();
    let mut cfg = SimConfig::paper_default(args.scheme, args.pairs);
    cfg.seed = args.seed;
    if args.scrub {
        // Shrunk disks so full scrub passes complete inside the window,
        // plus latent-error accrual for the scrub to find.
        cfg.disk.capacity_bytes = 256 << 20;
        cfg.logger_region = 32 << 20;
        cfg.graid_log_capacity = 64 << 20;
        cfg.scrub_enabled = true;
        cfg.faults.lse_rate_active = 0.005;
        cfg.faults.lse_rate_standby = 0.02;
    }
    let profile = rolo_trace::profiles::by_name(&args.trace).unwrap_or_else(|| {
        eprintln!("unknown trace profile {}", args.trace);
        std::process::exit(2);
    });
    let dur = Duration::from_secs((args.hours * 3600.0) as u64);
    let records = profile.generator(dur, cfg.seed).collect::<Vec<_>>();

    let (report, mut sink) =
        run_scheme_with_sink(&cfg, records, dur, Box::new(RingSink::new(RING_CAPACITY)));
    let dropped = sink.dropped();
    let events = sink.drain();
    if dropped > 0 {
        eprintln!(
            "warning: ring overflowed, {dropped} oldest events overwritten \
             (capacity {RING_CAPACITY})"
        );
    }

    // JSONL dump: one TracedEvent object per line.
    let path = args.out.clone().unwrap_or_else(|| {
        let dir = rolo_bench::results_dir();
        let _ = std::fs::create_dir_all(&dir);
        dir.join("trace_dump.jsonl").to_string_lossy().into_owned()
    });
    let mut lines = Vec::with_capacity(events.len());
    for ev in &events {
        lines.push(Serialize::to_value(ev).to_string());
    }
    let mut file = std::fs::File::create(&path).unwrap_or_else(|e| {
        eprintln!("cannot create {path}: {e}");
        std::process::exit(1);
    });
    for line in &lines {
        writeln!(file, "{line}").expect("write JSONL line");
    }
    drop(file);
    println!(
        "{} events ({} dropped) written to {path}",
        events.len(),
        dropped
    );

    // Per-kind counts and the residency table.
    let mut kinds: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut residency = Residency::default();
    let mut end = 0;
    for ev in &events {
        *kinds.entry(ev.event.kind_name()).or_default() += 1;
        residency.observe(ev);
        end = end.max(ev.at.as_micros());
    }
    println!("\nevent counts by kind:");
    for (kind, n) in &kinds {
        println!("{kind:>20} {n:>10}");
    }
    residency.finish(end);
    residency.print();

    // --slo: per-objective burn/breach summary from the event stream
    // (DESIGN.md §12). Burn rates travel in the events as x100 fixed
    // point, so the peak column is exact, not re-derived.
    if args.slo {
        use rolo_obs::SimEvent;
        #[derive(Default)]
        struct SloTally {
            warnings: u64,
            breaches: u64,
            first_warn: Option<u64>,
            first_breach: Option<u64>,
            peak_burn_x100: u64,
        }
        let mut tallies: BTreeMap<String, SloTally> = BTreeMap::new();
        for ev in &events {
            match &ev.event {
                SimEvent::SloBurnWarning {
                    slo,
                    window,
                    burn_short_x100,
                    ..
                } => {
                    let t = tallies.entry(slo.clone()).or_default();
                    t.warnings += 1;
                    t.first_warn.get_or_insert(*window);
                    t.peak_burn_x100 = t.peak_burn_x100.max(*burn_short_x100);
                }
                SimEvent::SloBreach { slo, window, .. } => {
                    let t = tallies.entry(slo.clone()).or_default();
                    t.breaches += 1;
                    t.first_breach.get_or_insert(*window);
                }
                _ => {}
            }
        }
        println!("\nSLO burn/breach summary ({}):", report.scheme);
        if tallies.is_empty() {
            println!("  no SLO events: every objective stayed within budget");
        } else {
            println!(
                "{:>16} {:>9} {:>9} {:>11} {:>13} {:>10}",
                "slo", "warnings", "breaches", "first-warn", "first-breach", "peak-burn"
            );
            let fmt_w = |w: Option<u64>| w.map_or("-".to_owned(), |w| format!("w{w}"));
            for (slo, t) in &tallies {
                println!(
                    "{:>16} {:>9} {:>9} {:>11} {:>13} {:>9.2}x",
                    slo,
                    t.warnings,
                    t.breaches,
                    fmt_w(t.first_warn),
                    fmt_w(t.first_breach),
                    t.peak_burn_x100 as f64 / 100.0
                );
            }
        }
    }

    println!(
        "\nscheme {} | {} requests | mean response {:.3} ms | {}",
        report.scheme,
        report.user_requests,
        report.mean_response_ms(),
        report.profile.summary()
    );

    // --check: every line must round-trip through the strict JSON parser.
    if args.check {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot re-read {path}: {e}");
            std::process::exit(1);
        });
        for (i, line) in text.lines().enumerate() {
            if let Err(e) = serde_json::from_str(line) {
                eprintln!("malformed JSONL at {path}:{}: {e}", i + 1);
                std::process::exit(1);
            }
        }
        // Per-disk causality: the ring preserves emission order, so the
        // events touching any one disk must carry non-decreasing
        // timestamps — a violation means an event was stamped with a
        // stale clock (or the ring reordered), either of which breaks
        // every downstream residency/latency computation.
        let mut last_at: BTreeMap<usize, u64> = BTreeMap::new();
        let mut violations = 0u64;
        for (i, ev) in events.iter().enumerate() {
            let Some(disk) = ev.event.disk() else {
                continue;
            };
            let at = ev.at.as_micros();
            if let Some(&prev) = last_at.get(&disk) {
                if at < prev {
                    violations += 1;
                    eprintln!(
                        "disk {disk} time-travel at event {i}: {} < {} ({})",
                        at,
                        prev,
                        ev.event.kind_name()
                    );
                }
            }
            last_at.insert(disk, at);
        }
        if violations > 0 {
            eprintln!("check: {violations} per-disk timestamp violations");
            std::process::exit(1);
        }
        // Segment lifecycle: sealing, compacting or archiving a segment
        // the stream never allocated (or retiring a frame no archive
        // produced) means the journal emitted events out of lifecycle
        // order — the DESIGN.md §10 state machine was violated.
        use rolo_obs::SimEvent;
        let mut allocated: BTreeMap<usize, std::collections::BTreeSet<u64>> = BTreeMap::new();
        let mut archived_frames: BTreeMap<usize, std::collections::BTreeSet<u64>> = BTreeMap::new();
        let mut lifecycle_violations = 0u64;
        fn require_alloc(
            allocated: &BTreeMap<usize, std::collections::BTreeSet<u64>>,
            i: usize,
            disk: usize,
            segment: u64,
            what: &str,
            n: &mut u64,
        ) {
            if !allocated.get(&disk).is_some_and(|s| s.contains(&segment)) {
                *n += 1;
                eprintln!(
                    "event {i}: {what} references never-allocated segment \
                     {segment} on disk {disk}"
                );
            }
        }
        for (i, ev) in events.iter().enumerate() {
            match &ev.event {
                SimEvent::SegmentAllocated { disk, segment } => {
                    allocated.entry(*disk).or_default().insert(*segment);
                }
                SimEvent::SegmentSealed { disk, segment, .. } => {
                    require_alloc(
                        &allocated,
                        i,
                        *disk,
                        *segment,
                        "SegmentSealed",
                        &mut lifecycle_violations,
                    );
                }
                SimEvent::SegmentCompacted { disk, segment, .. } => {
                    require_alloc(
                        &allocated,
                        i,
                        *disk,
                        *segment,
                        "SegmentCompacted",
                        &mut lifecycle_violations,
                    );
                }
                SimEvent::SegmentArchived {
                    disk,
                    segment,
                    frame,
                    ..
                } => {
                    require_alloc(
                        &allocated,
                        i,
                        *disk,
                        *segment,
                        "SegmentArchived",
                        &mut lifecycle_violations,
                    );
                    archived_frames.entry(*disk).or_default().insert(*frame);
                }
                SimEvent::ArchiveFrameRetired { disk, frame }
                    if !archived_frames.get(disk).is_some_and(|s| s.contains(frame)) =>
                {
                    lifecycle_violations += 1;
                    eprintln!(
                        "event {i}: ArchiveFrameRetired references never-archived \
                         frame {frame} on disk {disk}"
                    );
                }
                _ => {}
            }
        }
        if lifecycle_violations > 0 {
            eprintln!("check: {lifecycle_violations} segment-lifecycle violations");
            std::process::exit(1);
        }
        // Scrub lifecycle (DESIGN.md §11): per disk, a pass opens with
        // ScrubStart(pass), repairs land only while a pass is open, and
        // ScrubComplete closes exactly the pass that opened. The scrub
        // is power-aware, so no scrub event may touch a disk whose
        // tracked power state is spun down (Standby; for the issue-time
        // ScrubStart, SpinningDown as well).
        let mut power: BTreeMap<usize, String> = BTreeMap::new();
        let mut open_pass: BTreeMap<usize, u64> = BTreeMap::new();
        let mut scrub_violations = 0u64;
        let mut scrub_events = 0u64;
        let mut complain = |i: usize, msg: String| {
            scrub_violations += 1;
            eprintln!("event {i}: {msg}");
        };
        for (i, ev) in events.iter().enumerate() {
            match &ev.event {
                SimEvent::DiskInit { disk, state } => {
                    power.insert(*disk, format!("{state:?}"));
                }
                SimEvent::DiskState { disk, to, .. } => {
                    power.insert(*disk, format!("{to:?}"));
                }
                SimEvent::ScrubStart { disk, pass } => {
                    scrub_events += 1;
                    let state = power.get(disk).map(String::as_str).unwrap_or("?");
                    if state == "Standby" || state == "SpinningDown" {
                        complain(i, format!("ScrubStart on disk {disk} in state {state}"));
                    }
                    if let Some(open) = open_pass.insert(*disk, *pass) {
                        complain(
                            i,
                            format!("ScrubStart pass {pass} on disk {disk} while pass {open} open"),
                        );
                    }
                }
                SimEvent::ScrubRepair { disk, .. } => {
                    scrub_events += 1;
                    if power.get(disk).map(String::as_str) == Some("Standby") {
                        complain(i, format!("ScrubRepair on spun-down disk {disk}"));
                    }
                    if !open_pass.contains_key(disk) {
                        complain(i, format!("ScrubRepair on disk {disk} with no pass open"));
                    }
                }
                SimEvent::ScrubComplete { disk, pass, .. } => {
                    scrub_events += 1;
                    if power.get(disk).map(String::as_str) == Some("Standby") {
                        complain(i, format!("ScrubComplete on spun-down disk {disk}"));
                    }
                    match open_pass.remove(disk) {
                        Some(open) if open == *pass => {}
                        Some(open) => complain(
                            i,
                            format!(
                                "ScrubComplete pass {pass} on disk {disk} closes open pass {open}"
                            ),
                        ),
                        None => complain(
                            i,
                            format!("ScrubComplete pass {pass} on disk {disk} with no pass open"),
                        ),
                    }
                }
                _ => {}
            }
        }
        if scrub_violations > 0 {
            eprintln!("check: {scrub_violations} scrub-lifecycle violations");
            std::process::exit(1);
        }
        if args.scrub && scrub_events == 0 {
            eprintln!("check: --scrub run produced no scrub events (vacuous check)");
            std::process::exit(1);
        }
        // SLO alert lifecycle (DESIGN.md §12): the monitor's breach
        // condition subsumes its warning condition, so within any one
        // telemetry window a SloBreach for an objective must appear
        // after that objective's SloBurnWarning in the stream.
        let mut warned: std::collections::BTreeSet<(String, u64)> = Default::default();
        let mut slo_events = 0u64;
        let mut slo_violations = 0u64;
        for (i, ev) in events.iter().enumerate() {
            match &ev.event {
                SimEvent::SloBurnWarning { slo, window, .. } => {
                    slo_events += 1;
                    warned.insert((slo.clone(), *window));
                }
                SimEvent::SloBreach { slo, window, .. } => {
                    slo_events += 1;
                    if !warned.contains(&(slo.clone(), *window)) {
                        slo_violations += 1;
                        eprintln!(
                            "event {i}: SloBreach({slo}, w{window}) with no \
                             preceding warning in its window"
                        );
                    }
                }
                _ => {}
            }
        }
        if slo_violations > 0 {
            eprintln!("check: {slo_violations} SLO-lifecycle violations");
            std::process::exit(1);
        }
        // The pipeline exists to flag RoLo-E's spin-up tail: a --slo
        // check run on that scheme that raises no alert at all proves
        // nothing, so fail it as vacuous (mirrors the --scrub guard).
        if args.slo && matches!(args.scheme, Scheme::RoloE) && slo_events == 0 {
            eprintln!("check: --slo run on rolo-e produced no SLO events (vacuous check)");
            std::process::exit(1);
        }
        println!(
            "check: {} JSONL lines parse cleanly, per-disk timestamps monotone, \
             segment lifecycle ordered, scrub lifecycle ordered ({} scrub events), \
             SLO lifecycle ordered ({} SLO events)",
            text.lines().count(),
            scrub_events,
            slo_events
        );
    }
}
