//! Table I: number of disk spin cycles per scheme under src2_2 and
//! proj_0 (40-disk array, one simulated week).
//!
//! Paper values: RAID10 0/0, GRAID 40/120, RoLo-P/R 4/12, RoLo-E
//! 357/2874 — i.e. RoLo-P/R spin an order of magnitude less than GRAID,
//! while RoLo-E's read-miss wake-ups dwarf everything.

use rolo_bench::{expect_consistent, run_profile, week_scale, write_results};
use rolo_core::{Scheme, SimConfig};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    scheme: String,
    src2_2: u64,
    proj_0: u64,
}

fn main() {
    let jobs: Vec<(Scheme, &'static str)> = Scheme::all()
        .into_iter()
        .flat_map(|s| [(s, "src2_2"), (s, "proj_0")])
        .collect();
    let spins = rolo_bench::parallel_map(jobs.clone(), |(scheme, trace)| {
        let profile = rolo_trace::profiles::by_name(trace).expect("profile");
        let cfg = SimConfig::paper_default(scheme, 20);
        let r = run_profile(&cfg, &profile, 0xab1e);
        expect_consistent(&r, &format!("table1 {scheme:?} {trace}"));
        r.spin_cycles
    });

    println!("Table I: disk spin cycles over one week (paper values in parentheses)");
    println!("{:<8} {:>16} {:>16}", "scheme", "src2_2", "proj_0");
    let paper = [
        ("RAID10", 0u64, 0u64),
        ("GRAID", 40, 120),
        ("RoLo-P", 4, 12),
        ("RoLo-R", 4, 12),
        ("RoLo-E", 357, 2874),
    ];
    let mut rows = Vec::new();
    for (i, scheme) in Scheme::all().into_iter().enumerate() {
        let s = spins[i * 2];
        let p = spins[i * 2 + 1];
        let scale = week_scale();
        let (name, ps, pp) = paper[i];
        println!(
            "{:<8} {:>8} ({:>4}) {:>8} ({:>4})",
            scheme,
            s,
            (ps as f64 * scale).round() as u64,
            p,
            (pp as f64 * scale).round() as u64
        );
        let _ = name;
        rows.push(Row {
            scheme: scheme.to_string(),
            src2_2: s,
            proj_0: p,
        });
    }
    println!("\nkey ratios:");
    let graid_s = rows[1].src2_2.max(1);
    let rolo_s = rows[2].src2_2.max(1);
    println!(
        "  RoLo-P spins {:.0}x less than GRAID on src2_2 (paper: 10x)",
        graid_s as f64 / rolo_s as f64
    );
    println!(
        "  RoLo-E spins {:.0}x more than GRAID on proj_0 (paper: ~24x)",
        rows[4].proj_0 as f64 / rows[1].proj_0.max(1) as f64
    );
    write_results("table1", &rows);
}
