//! GRAID destage-threshold sensitivity (extension of the §II motivation
//! study).
//!
//! The paper fixes GRAID's destage trigger at 80 % log occupancy. This
//! study sweeps the threshold: a lower trigger destages earlier (more
//! cycles, more mirror spin-ups) while a higher one leaves less headroom
//! for absorbing writes during the destage period (forcing direct writes
//! to spinning-up mirrors when the log overflows).

use rolo_bench::{expect_consistent, run_profile, write_results};
use rolo_core::{Scheme, SimConfig};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    trace: String,
    threshold: f64,
    destage_cycles: u64,
    spin_cycles: u64,
    direct_writes: u64,
    mean_response_ms: f64,
    energy_mj: f64,
}

fn main() {
    const THRESHOLDS: [f64; 4] = [0.5, 0.7, 0.8, 0.95];
    let traces = ["src2_2", "proj_0"];
    let jobs: Vec<(String, f64)> = traces
        .iter()
        .flat_map(|t| THRESHOLDS.iter().map(move |&x| (t.to_string(), x)))
        .collect();
    let rows = rolo_bench::parallel_map(jobs, |(trace, threshold)| {
        let profile = rolo_trace::profiles::by_name(&trace).expect("profile");
        let mut cfg = SimConfig::paper_default(Scheme::Graid, 20);
        cfg.destage_threshold = threshold;
        let r = run_profile(&cfg, &profile, 0x7123);
        expect_consistent(&r, &format!("threshold {trace} {threshold}"));
        Row {
            trace,
            threshold,
            destage_cycles: r.policy.destage_cycles,
            spin_cycles: r.spin_cycles,
            direct_writes: r.policy.direct_writes,
            mean_response_ms: r.mean_response_ms(),
            energy_mj: r.total_energy_j / 1e6,
        }
    });

    println!("GRAID destage-threshold sensitivity (one week, 40 disks + log disk)\n");
    println!(
        "{:<8} {:>10} {:>8} {:>8} {:>9} {:>11} {:>10}",
        "trace", "threshold", "cycles", "spins", "overflow", "mean resp", "energy"
    );
    for r in &rows {
        println!(
            "{:<8} {:>9.0}% {:>8} {:>8} {:>9} {:>9.2}ms {:>8.1}MJ",
            r.trace,
            r.threshold * 100.0,
            r.destage_cycles,
            r.spin_cycles,
            r.direct_writes,
            r.mean_response_ms,
            r.energy_mj
        );
    }
    println!("\n(the paper's 80 % sits in the flat middle: earlier triggers multiply");
    println!(" the spin bursts, later ones start risking log-overflow fallbacks —");
    println!(" and none of it changes energy much, which is the §II observation");
    println!(" that centralized logging cannot be tuned out of its destage cost)");
    write_results("threshold_sensitivity", &rows);
}
