//! Figure 12: average response time as a function of array size
//! (20/30/40 disks) under src2_2 and proj_0, for GRAID, RoLo-P, RoLo-R
//! and RoLo-E.
//!
//! The paper's finding: response times of RAID10/GRAID/RoLo-P/RoLo-R
//! fall as the array grows (more access parallelism).

use rolo_bench::{expect_consistent, run_profile, write_results};
use rolo_core::{Scheme, SimConfig};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    trace: String,
    scheme: String,
    disks: usize,
    mean_response_ms: f64,
    p99_response_ms: f64,
}

fn main() {
    let traces = ["src2_2", "proj_0"];
    const SIZES: [usize; 3] = [10, 15, 20];
    let sizes = SIZES;
    let jobs: Vec<(String, Scheme, usize)> = traces
        .iter()
        .flat_map(|t| {
            Scheme::all()
                .into_iter()
                .flat_map(move |s| SIZES.iter().map(move |&p| (t.to_string(), s, p)))
        })
        .collect();
    let results = rolo_bench::parallel_map(jobs, |(trace, scheme, pairs)| {
        let profile = rolo_trace::profiles::by_name(&trace).expect("profile");
        let cfg = SimConfig::paper_default(scheme, pairs);
        let r = run_profile(&cfg, &profile, 0xf12);
        expect_consistent(&r, &format!("fig12 {trace} {scheme:?} {pairs}"));
        let p99 = r
            .responses
            .percentile(99.0)
            .map(|d| d.as_millis_f64())
            .unwrap_or(0.0);
        Row {
            trace,
            scheme: scheme.to_string(),
            disks: pairs * 2,
            mean_response_ms: r.mean_response_ms(),
            p99_response_ms: p99,
        }
    });

    for trace in traces {
        println!("\n=== {trace}: average response time (ms) ===");
        println!("{:<8} {:>9} {:>9} {:>9}", "scheme", "20", "30", "40");
        for scheme in Scheme::all() {
            let mut line = format!("{:<8}", scheme.to_string());
            for pairs in sizes {
                let row = results
                    .iter()
                    .find(|r| {
                        r.trace == trace && r.scheme == scheme.to_string() && r.disks == pairs * 2
                    })
                    .expect("run present");
                line += &format!(" {:>9.2}", row.mean_response_ms);
            }
            println!("{line}");
        }
    }
    println!("\n(paper: response time decreases with array size for all non-RoLo-E");
    println!(" schemes thanks to increased parallelism; RoLo-E shown for context)");
    write_results("fig12", &results);
}
