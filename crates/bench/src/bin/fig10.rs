//! Figure 10 + Tables IV & V: the paper's headline comparison.
//!
//! Energy consumption and average response time of RAID10, GRAID,
//! RoLo-P, RoLo-R and RoLo-E — normalised to RAID10 — on a 40-disk array
//! (64 KB stripe unit, 8 GB free space per disk) under the src2_2 and
//! proj_0 traces. Also prints:
//!
//! * Table IV: energy saved / performance gained over RAID10 and GRAID;
//! * Table V: RoLo-E read ratio, hit rate and performance polarization.

use rolo_bench::{expect_consistent, run_profile, week_secs, write_results};
use rolo_core::{Scheme, SimConfig, SimReport};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct SchemeResult {
    trace: String,
    scheme: String,
    energy_j: f64,
    energy_norm: f64,
    mean_response_ms: f64,
    response_norm: f64,
    spin_cycles: u64,
    cache_hit_rate: f64,
    read_ratio: f64,
}

fn main() {
    let traces = ["src2_2", "proj_0"];
    let jobs: Vec<(String, Scheme)> = traces
        .iter()
        .flat_map(|t| Scheme::all().map(|s| (t.to_string(), s)))
        .collect();
    let reports: Vec<(String, SimReport)> = rolo_bench::parallel_map(jobs, |(trace, scheme)| {
        let profile = rolo_trace::profiles::by_name(&trace).expect("profile");
        let cfg = SimConfig::paper_default(scheme, 20);
        let r = run_profile(&cfg, &profile, 1106);
        expect_consistent(&r, &format!("fig10 {trace} {scheme:?}"));
        (trace, r)
    });

    let mut rows: Vec<SchemeResult> = Vec::new();
    for trace in traces {
        let of_trace: Vec<&SimReport> = reports
            .iter()
            .filter(|(t, _)| t == trace)
            .map(|(_, r)| r)
            .collect();
        let base = of_trace[0];
        println!("\n=== {trace} ({} h simulated) ===", week_secs() / 3600);
        println!(
            "{:<8} {:>11} {:>8} {:>11} {:>8} {:>8} {:>7}",
            "scheme", "energy", "norm", "mean resp", "norm", "spins", "hit%"
        );
        for r in &of_trace {
            let reads = r.read_responses.count();
            let row = SchemeResult {
                trace: trace.to_owned(),
                scheme: r.scheme.clone(),
                energy_j: r.total_energy_j,
                energy_norm: r.energy_vs(base),
                mean_response_ms: r.mean_response_ms(),
                response_norm: r.response_vs(base),
                spin_cycles: r.spin_cycles,
                cache_hit_rate: r.policy.cache_hit_rate(),
                read_ratio: reads as f64 / r.user_requests.max(1) as f64,
            };
            println!(
                "{:<8} {:>11} {:>8.3} {:>9.2}ms {:>8.3} {:>8} {:>7.1}",
                row.scheme,
                rolo_bench::mj(row.energy_j),
                row.energy_norm,
                row.mean_response_ms,
                row.response_norm,
                row.spin_cycles,
                row.cache_hit_rate * 100.0
            );
            rows.push(row);
        }
    }

    // Table IV: deltas vs RAID10 and GRAID.
    println!("\n=== Table IV: comparison summary ===");
    println!(
        "{:<8} {:<8} {:>16} {:>16} {:>18} {:>18}",
        "trace", "scheme", "E saved/RAID10", "E saved/GRAID", "perf vs RAID10", "perf vs GRAID"
    );
    for trace in traces {
        let of_trace: Vec<&SimReport> = reports
            .iter()
            .filter(|(t, _)| t == trace)
            .map(|(_, r)| r)
            .collect();
        let raid10 = of_trace[0];
        let graid = of_trace[1];
        for r in of_trace.iter().skip(2) {
            println!(
                "{:<8} {:<8} {:>15.1}% {:>15.1}% {:>17.1}% {:>17.1}%",
                trace,
                r.scheme,
                r.energy_saved_over(raid10) * 100.0,
                r.energy_saved_over(graid) * 100.0,
                r.performance_gained_over(raid10) * 100.0,
                r.performance_gained_over(graid) * 100.0,
            );
        }
    }
    println!("(paper: RoLo-P/R save 42.6–47.2 % over RAID10 and ~11.5 % over GRAID;");
    println!(" RoLo-E saves 75.8–81.7 % over RAID10; RoLo-P loses 0.7–4.2 % performance");
    println!(" to RAID10; RoLo-R trails RoLo-P by 3.8–4.4 %; RoLo-E polarizes.)");

    // Table V: RoLo-E characteristics.
    println!("\n=== Table V: RoLo-E under the two traces ===");
    println!(
        "{:<8} {:>10} {:>10} {:>22}",
        "trace", "read %", "hit %", "perf gained/RAID10"
    );
    for trace in traces {
        let of_trace: Vec<&SimReport> = reports
            .iter()
            .filter(|(t, _)| t == trace)
            .map(|(_, r)| r)
            .collect();
        let raid10 = of_trace[0];
        let roloe = of_trace[4];
        let reads = roloe.read_responses.count();
        println!(
            "{:<8} {:>9.2}% {:>9.2}% {:>21.0}%",
            trace,
            reads as f64 / roloe.user_requests.max(1) as f64 * 100.0,
            roloe.policy.cache_hit_rate() * 100.0,
            roloe.performance_gained_over(raid10) * 100.0
        );
    }
    println!("(paper: src2_2 0.38 % reads / 90.6 % hits / +75 %; proj_0 5.1 % / 26.7 % / -584 %)");

    write_results("fig10", &rows);
}
