//! Figure 13: energy saved over GRAID as a function of per-disk free
//! space (8/6/4 GB) for RoLo-P/R/E under src2_2 and proj_0.
//!
//! The paper's findings to reproduce: savings shrink only slightly as
//! free space shrinks (shorter logging periods → more rotations), and
//! mean response time is essentially insensitive to free space.

use rolo_bench::{expect_consistent, run_profile, write_results};
use rolo_core::{Scheme, SimConfig};
use serde::Serialize;

const GIB: u64 = 1 << 30;

#[derive(Debug, Serialize)]
struct Row {
    trace: String,
    scheme: String,
    free_gib: u64,
    energy_saved_over_graid: f64,
    mean_response_ms: f64,
    rotations: u64,
}

fn main() {
    let traces = ["src2_2", "proj_0"];
    const FREE_SPACE: [u64; 3] = [8, 6, 4];
    let free_space = FREE_SPACE;
    let schemes = [Scheme::Graid, Scheme::RoloP, Scheme::RoloR, Scheme::RoloE];
    let jobs: Vec<(String, Scheme, u64)> = traces
        .iter()
        .flat_map(|t| {
            schemes
                .iter()
                .flat_map(move |&s| FREE_SPACE.iter().map(move |&f| (t.to_string(), s, f)))
        })
        .collect();
    let results = rolo_bench::parallel_map(jobs, |(trace, scheme, free)| {
        let profile = rolo_trace::profiles::by_name(&trace).expect("profile");
        let mut cfg = SimConfig::paper_default(scheme, 20);
        cfg.logger_region = free * GIB;
        let r = run_profile(&cfg, &profile, 0xf13);
        expect_consistent(&r, &format!("fig13 {trace} {scheme:?} {free}"));
        (trace, scheme, free, r)
    });

    let mut rows = Vec::new();
    for trace in traces {
        println!("\n=== {trace}: energy saved over GRAID ===");
        println!("{:<8} {:>8} {:>8} {:>8}", "scheme", "8GB", "6GB", "4GB");
        for &scheme in &schemes[1..] {
            let mut line = format!("{:<8}", scheme.to_string());
            for &free in &free_space {
                let graid = &results
                    .iter()
                    .find(|(t, s, f, _)| t == trace && *s == Scheme::Graid && *f == free)
                    .expect("baseline present")
                    .3;
                let (_, _, _, r) = results
                    .iter()
                    .find(|(t, s, f, _)| t == trace && *s == scheme && *f == free)
                    .expect("run present");
                let saved = r.energy_saved_over(graid);
                line += &format!(" {:>7.1}%", saved * 100.0);
                rows.push(Row {
                    trace: trace.to_owned(),
                    scheme: scheme.to_string(),
                    free_gib: free,
                    energy_saved_over_graid: saved,
                    mean_response_ms: r.mean_response_ms(),
                    rotations: r.policy.rotations,
                });
            }
            println!("{line}");
        }
    }
    println!("\nresponse-time sensitivity (RoLo-P, ms):");
    for trace in traces {
        let resp: Vec<String> = free_space
            .iter()
            .map(|&f| {
                let row = rows
                    .iter()
                    .find(|r| r.trace == trace && r.scheme == "RoLo-P" && r.free_gib == f)
                    .unwrap();
                format!(
                    "{}GB {:.2}ms ({} rotations)",
                    f, row.mean_response_ms, row.rotations
                )
            })
            .collect();
        println!("  {trace}: {}", resp.join(", "));
    }
    println!("\n(paper: savings decrease slightly with less free space; response");
    println!(" time is almost unchanged — destaging has little foreground impact)");
    write_results("fig13", &rows);
}
