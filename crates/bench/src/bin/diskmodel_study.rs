//! §V-C's stated future work: RoLo's energy savings under a different
//! disk model — the Seagate Cheetah 15K.5 the paper names.
//!
//! Runs the Fig. 10 comparison (40 disks, src2_2 and proj_0, one week)
//! on both disk models with the free-space ratio held at the paper's
//! ~43 % of capacity for the Ultrastar (8 GB of 18.4 GB) and the same
//! ratio of the Cheetah's 300 GB. The paper's §V-C conjecture to test:
//! the saving of RoLo over GRAID is governed by disk *count* and free
//! space, not by the disk model.

use rolo_bench::{expect_consistent, run_profile, write_results};
use rolo_core::{Scheme, SimConfig};
use rolo_disk::DiskParams;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    disk_model: String,
    trace: String,
    scheme: String,
    energy_j: f64,
    energy_saved_over_raid10: f64,
    energy_saved_over_graid: f64,
    spin_cycles: u64,
}

fn main() {
    let models = [DiskParams::ultrastar_36z15(), DiskParams::cheetah_15k5()];
    let traces = ["src2_2", "proj_0"];
    let jobs: Vec<(DiskParams, String, Scheme)> = models
        .iter()
        .flat_map(|m| {
            traces.iter().flat_map(move |t| {
                Scheme::all()
                    .into_iter()
                    .map(move |s| (m.clone(), t.to_string(), s))
            })
        })
        .collect();
    let results = rolo_bench::parallel_map(jobs, |(model, trace, scheme)| {
        let profile = rolo_trace::profiles::by_name(&trace).expect("profile");
        let mut cfg = SimConfig::paper_default(scheme, 20);
        // Hold the free-space *ratio* at the Ultrastar default.
        let ratio = (8u64 << 30) as f64 / DiskParams::ultrastar_36z15().capacity_bytes as f64;
        cfg.logger_region =
            ((model.capacity_bytes as f64 * ratio) as u64 / cfg.stripe_unit) * cfg.stripe_unit;
        cfg.graid_log_capacity = cfg.logger_region * 2;
        cfg.disk = model.clone();
        let r = run_profile(&cfg, &profile, 0xd15c2);
        expect_consistent(&r, &format!("{} {trace} {scheme:?}", model.model));
        (model.model.clone(), trace, scheme, r)
    });

    let mut rows = Vec::new();
    for model in &models {
        for trace in traces {
            let of: Vec<_> = results
                .iter()
                .filter(|(m, t, _, _)| *m == model.model && t == trace)
                .collect();
            let raid10 = &of[0].3;
            let graid = &of[1].3;
            for (m, t, s, r) in &of {
                rows.push(Row {
                    disk_model: m.clone(),
                    trace: t.clone(),
                    scheme: s.to_string(),
                    energy_j: r.total_energy_j,
                    energy_saved_over_raid10: r.energy_saved_over(raid10),
                    energy_saved_over_graid: r.energy_saved_over(graid),
                    spin_cycles: r.spin_cycles,
                });
            }
        }
    }

    println!("§V-C future work: energy savings across disk models (one week, 40 disks)\n");
    println!(
        "{:<22} {:<8} {:<8} {:>10} {:>12} {:>12}",
        "disk", "trace", "scheme", "energy", "vs RAID10", "vs GRAID"
    );
    for r in &rows {
        println!(
            "{:<22} {:<8} {:<8} {:>8.1}MJ {:>11.1}% {:>11.1}%",
            r.disk_model,
            r.trace,
            r.scheme,
            r.energy_j / 1e6,
            r.energy_saved_over_raid10 * 100.0,
            r.energy_saved_over_graid * 100.0
        );
    }

    println!("\nconjecture check (RoLo-P saving over GRAID per model):");
    for model in &models {
        for trace in traces {
            let row = rows
                .iter()
                .find(|r| r.disk_model == model.model && r.trace == trace && r.scheme == "RoLo-P")
                .unwrap();
            println!(
                "  {:<22} {trace}: {:+.2} %",
                model.model,
                row.energy_saved_over_graid * 100.0
            );
        }
    }
    println!("(paper's conjecture: the saving over GRAID does not vary with the model)");
    write_results("diskmodel_study", &rows);
}
