//! Figure 14: energy consumption and average response time (normalised
//! to RAID10) under the five non-write-intensive traces — mds_0, hm_1,
//! rsrch_2, wdev_0 and web_1.
//!
//! The paper's finding to reproduce: on light, read-heavier workloads
//! RoLo-P/R behave like GRAID energy-wise and the performance penalty of
//! RoLo-R stays within a few percent — "when RoLo is deployed in
//! non-write-intensive application environments, its negative impact, if
//! any, is negligible".

use rolo_bench::{expect_consistent, run_profile, write_results};
use rolo_core::{Scheme, SimConfig};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    trace: String,
    scheme: String,
    energy_norm: f64,
    response_norm: f64,
    mean_response_ms: f64,
}

fn main() {
    let traces = ["mds_0", "hm_1", "rsrch_2", "wdev_0", "web_1"];
    let jobs: Vec<(String, Scheme)> = traces
        .iter()
        .flat_map(|t| Scheme::all().map(|s| (t.to_string(), s)))
        .collect();
    let results = rolo_bench::parallel_map(jobs, |(trace, scheme)| {
        let profile = rolo_trace::profiles::by_name(&trace).expect("profile");
        let cfg = SimConfig::paper_default(scheme, 20);
        let r = run_profile(&cfg, &profile, 0xf14);
        expect_consistent(&r, &format!("fig14 {trace} {scheme:?}"));
        (trace, scheme, r)
    });

    let mut rows = Vec::new();
    println!("=== Figure 14(a): energy normalised to RAID10 ===");
    println!(
        "{:<8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "trace", "RAID10", "GRAID", "RoLo-P", "RoLo-R", "RoLo-E"
    );
    for trace in traces {
        let base = &results
            .iter()
            .find(|(t, s, _)| t == trace && *s == Scheme::Raid10)
            .unwrap()
            .2;
        let mut line = format!("{trace:<8}");
        for scheme in Scheme::all() {
            let r = &results
                .iter()
                .find(|(t, s, _)| t == trace && *s == scheme)
                .unwrap()
                .2;
            line += &format!(" {:>8.3}", r.energy_vs(base));
            rows.push(Row {
                trace: trace.to_owned(),
                scheme: scheme.to_string(),
                energy_norm: r.energy_vs(base),
                response_norm: r.response_vs(base),
                mean_response_ms: r.mean_response_ms(),
            });
        }
        println!("{line}");
    }

    println!(
        "\n=== Figure 14(b): mean response time normalised to RAID10 (log scale in paper) ==="
    );
    println!(
        "{:<8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "trace", "RAID10", "GRAID", "RoLo-P", "RoLo-R", "RoLo-E"
    );
    for trace in traces {
        let mut line = format!("{trace:<8}");
        for scheme in Scheme::all() {
            let row = rows
                .iter()
                .find(|r| r.trace == trace && r.scheme == scheme.to_string())
                .unwrap();
            line += &format!(" {:>8.2}", row.response_norm);
        }
        println!("{line}");
    }
    println!("\n(paper: RoLo-P/R energy equals GRAID's; RoLo-R trails RoLo-P and GRAID");
    println!(" by 0.7–7.3 %; RoLo-E's normalised response explodes on read-heavy traces)");
    write_results("fig14", &rows);
}
