//! §V-C "Stripe Unit Size": energy sensitivity to 16/32/64 KB stripe
//! units on a 40-disk array under src2_2 and proj_0.
//!
//! The paper reports the results in prose (no figure): *"except for
//! RoLo-E that is noticeably sensitive to stripe unit size under src2_2,
//! none of the schemes is sensitive at all to stripe unit size in terms
//! of energy efficiency"*, because src2_2's large (68 KB) reads split
//! into more sub-requests at small stripe units, spinning up more disks
//! on RoLo-E read misses.

use rolo_bench::{expect_consistent, run_profile, write_results};
use rolo_core::{Scheme, SimConfig};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    trace: String,
    scheme: String,
    stripe_kib: u64,
    energy_saved_over_raid10: f64,
    read_miss_spinups: u64,
}

fn main() {
    let traces = ["src2_2", "proj_0"];
    const STRIPES: [u64; 3] = [16, 32, 64];
    let stripes = STRIPES;
    let jobs: Vec<(String, Scheme, u64)> = traces
        .iter()
        .flat_map(|t| {
            Scheme::all()
                .into_iter()
                .flat_map(move |s| STRIPES.iter().map(move |&u| (t.to_string(), s, u)))
        })
        .collect();
    let results = rolo_bench::parallel_map(jobs, |(trace, scheme, stripe)| {
        let profile = rolo_trace::profiles::by_name(&trace).expect("profile");
        let mut cfg = SimConfig::paper_default(scheme, 20);
        cfg.stripe_unit = stripe * 1024;
        let r = run_profile(&cfg, &profile, 0x57e);
        expect_consistent(&r, &format!("stripe {trace} {scheme:?} {stripe}"));
        (trace, scheme, stripe, r)
    });

    let mut rows = Vec::new();
    for trace in traces {
        println!("\n=== {trace}: energy saved over RAID10 by stripe unit ===");
        println!("{:<8} {:>8} {:>8} {:>8}", "scheme", "16KB", "32KB", "64KB");
        for scheme in Scheme::all().into_iter().skip(1) {
            let mut line = format!("{:<8}", scheme.to_string());
            for &stripe in &stripes {
                let raid10 = &results
                    .iter()
                    .find(|(t, s, u, _)| t == trace && *s == Scheme::Raid10 && *u == stripe)
                    .unwrap()
                    .3;
                let (_, _, _, r) = results
                    .iter()
                    .find(|(t, s, u, _)| t == trace && *s == scheme && *u == stripe)
                    .unwrap();
                line += &format!(" {:>7.1}%", r.energy_saved_over(raid10) * 100.0);
                rows.push(Row {
                    trace: trace.to_owned(),
                    scheme: scheme.to_string(),
                    stripe_kib: stripe,
                    energy_saved_over_raid10: r.energy_saved_over(raid10),
                    read_miss_spinups: r.policy.read_miss_spinups,
                });
            }
            println!("{line}");
        }
    }
    println!("\nRoLo-E read-miss spin-ups by stripe unit (the cause of its src2_2 sensitivity):");
    for trace in traces {
        let v: Vec<String> = stripes
            .iter()
            .map(|&u| {
                let row = rows
                    .iter()
                    .find(|r| r.trace == trace && r.scheme == "RoLo-E" && r.stripe_kib == u)
                    .unwrap();
                format!("{}KB: {}", u, row.read_miss_spinups)
            })
            .collect();
        println!("  {trace}: {}", v.join("  "));
    }
    write_results("stripe_sensitivity", &rows);
}
