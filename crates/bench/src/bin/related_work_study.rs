//! §VI related-work comparison: RoLo vs a PARAID-style gear-shifter.
//!
//! The paper positions RoLo against PARAID qualitatively (*"PARAID uses
//! [free space] to gather all active data onto a small number of
//! disks"*). This study makes the contrast quantitative on the paper's
//! two write-intensive traces: a two-gear PARAID-style controller
//! (mirrors parked in low gear, second copies shadowed onto the
//! primaries' free space, whole-set gear shifts on load) against RoLo-P
//! and GRAID.

use rolo_bench::{expect_consistent, week, write_results};
use rolo_core::{ParaidPolicy, Scheme, SimConfig};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    trace: String,
    scheme: String,
    energy_j: f64,
    energy_norm_raid10: f64,
    mean_response_ms: f64,
    spin_cycles: u64,
    gear_shifts_or_rotations: u64,
}

fn main() {
    let traces = ["src2_2", "proj_0"];
    let rows: Vec<Vec<Row>> = rolo_bench::parallel_map(traces.to_vec(), |trace| {
        let profile = rolo_trace::profiles::by_name(trace).expect("profile");
        let dur = week();
        let mut out = Vec::new();
        let mut reports = Vec::new();
        for scheme in [Scheme::Raid10, Scheme::Graid, Scheme::RoloP] {
            let cfg = SimConfig::paper_default(scheme, 20);
            let r = rolo_core::run_scheme(&cfg, profile.generator(dur, 0x6e1), dur);
            expect_consistent(&r, &format!("{trace} {scheme:?}"));
            reports.push(r);
        }
        // PARAID: gear up when the busy-interval rate arrives (half the
        // table's burst IOPS), gear down after 5 quiet minutes.
        let cfg = SimConfig::paper_default(Scheme::Raid10, 20);
        let geo = cfg.geometry().expect("geometry");
        let paraid = ParaidPolicy::new(
            cfg.pairs,
            geo.logger_base(),
            geo.logger_region(),
            profile.burst_iops * 0.5,
            profile.burst_iops * 0.1,
            rolo_sim::Duration::from_secs(300),
            cfg.destage_chunk,
        );
        let r = rolo_core::run_trace(&cfg, profile.generator(dur, 0x6e1), paraid, dur);
        expect_consistent(&r, &format!("{trace} paraid"));
        reports.push(r);

        let base = reports[0].total_energy_j;
        for r in &reports {
            out.push(Row {
                trace: trace.to_owned(),
                scheme: r.scheme.clone(),
                energy_j: r.total_energy_j,
                energy_norm_raid10: r.total_energy_j / base,
                mean_response_ms: r.mean_response_ms(),
                spin_cycles: r.spin_cycles,
                gear_shifts_or_rotations: r.policy.rotations,
            });
        }
        out
    });
    let rows: Vec<Row> = rows.into_iter().flatten().collect();

    println!("§VI related work: RoLo vs PARAID-style gear shifting (one week, 40 disks)\n");
    println!(
        "{:<8} {:<10} {:>10} {:>8} {:>11} {:>7} {:>13}",
        "trace", "scheme", "energy", "norm", "mean resp", "spins", "shifts/rots"
    );
    for r in &rows {
        println!(
            "{:<8} {:<10} {:>8.1}MJ {:>8.3} {:>9.2}ms {:>7} {:>13}",
            r.trace,
            r.scheme,
            r.energy_j / 1e6,
            r.energy_norm_raid10,
            r.mean_response_ms,
            r.spin_cycles,
            r.gear_shifts_or_rotations
        );
    }
    println!("\n(the contrast the paper draws in §VI: both exploit free space, but a");
    println!(" gear shift moves the *entire* mirror set at once — spin bursts and");
    println!(" gear-up latency — where RoLo's rotation touches one logger at a time)");
    write_results("related_work_study", &rows);
}
