//! Per-scheme critical-path attribution over the smoke workload
//! (DESIGN.md §9): runs every scheme with span tracing on, folds the
//! finished request spans through [`rolo_obs::critical_path`] and prints
//! where each scheme's mean response time actually goes.
//!
//! ```text
//! span_report [trace] [hours] [--top N]     (defaults: src2_2, 2)
//! ```
//!
//! Exits non-zero if any scheme attributes less than 95 % of its summed
//! response time to typed phases — the coverage bar the span taxonomy
//! promises. Results land in `results/span_report.json`. Rows are
//! sorted by scheme name so the table and JSON are byte-stable for CI
//! diffs regardless of worker scheduling.
//!
//! `--top N` appends a per-scheme drill-down of the N slowest requests
//! (selected by the same deterministic total order the exemplar
//! recorder uses — response time descending, request id ascending):
//! request id, response time, dominant critical-path phase and the
//! background activity that delayed it, if `delayed_by` names one.

use rolo_bench::{expect_consistent, parallel_map};
use rolo_core::{ParaidPolicy, Scheme, SimConfig, SimReport};
use rolo_obs::{AttributionSummary, SpanAnalysis, SpanSet};
use rolo_sim::Duration;
use serde::Serialize;

/// Minimum fraction of summed response time that must be explained by
/// typed phases, per scheme.
const MIN_ATTRIBUTED: f64 = 0.95;

/// Short column headers, in [`Phase::ALL`] order.
const COLS: [&str; rolo_obs::NUM_PHASES] = [
    "queue", "seek", "rot", "xfer", "log", "mirror", "spinup", "destage", "redir", "compact",
    "scrub",
];

#[derive(Debug, Clone, Serialize)]
struct SchemeAttribution {
    scheme: String,
    trace: String,
    hours: f64,
    background_spans: usize,
    delayed_legs: u64,
    all: AttributionSummary,
    reads: AttributionSummary,
    writes: AttributionSummary,
}

fn paraid(cfg: &SimConfig, burst_iops: f64) -> ParaidPolicy {
    let geo = cfg.geometry().expect("geometry");
    ParaidPolicy::new(
        cfg.pairs,
        geo.logger_base(),
        geo.logger_region(),
        burst_iops * 0.5,
        burst_iops * 0.1,
        Duration::from_secs(300),
        cfg.destage_chunk,
    )
}

/// The N slowest requests of one scheme's run, for `--top`.
fn top_table(scheme: &str, spans: &SpanSet, n: usize) {
    println!("{scheme}: {n} slowest requests");
    println!(
        "  {:>8} {:>12} {:<20} {:<10}",
        "rid", "response", "dominant", "culprit"
    );
    for span in rolo_obs::slowest_spans(&spans.requests, n) {
        let path = rolo_obs::critical_path(span);
        let dominant = path
            .phase_us
            .iter()
            .enumerate()
            .filter(|(_, us)| **us > 0)
            .max_by(|(ia, a), (ib, b)| a.cmp(b).then(ib.cmp(ia)))
            .map(|(i, _)| rolo_obs::Phase::ALL[i].name())
            .unwrap_or("-");
        // Name the background activity that delayed the request, if
        // any leg was pushed behind one (`-` covers self-inflicted
        // tails like spin-up stalls, which have no bg span).
        let culprit = span
            .legs
            .iter()
            .filter_map(|l| l.delayed_by)
            .find_map(|id| spans.background.iter().find(|b| b.id == id))
            .map(|b| format!("{:?}", b.kind))
            .unwrap_or_else(|| "-".to_owned());
        println!(
            "  {:>8} {:>10.2}ms {:<20} {:<10}",
            span.id,
            span.duration().as_micros() as f64 / 1e3,
            dominant,
            culprit
        );
    }
}

fn main() {
    let mut top = 0usize;
    let mut positional = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        if a == "--top" {
            top = it
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--top takes a count");
        } else {
            positional.push(a);
        }
    }
    let trace = positional.first().map(String::as_str).unwrap_or("src2_2");
    let hours: f64 = positional
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2.0);
    let profile = rolo_trace::profiles::by_name(trace).expect("unknown trace profile");
    let dur = Duration::from_secs((hours * 3600.0) as u64);

    let schemes = [
        Scheme::Raid10,
        Scheme::Graid,
        Scheme::RoloP,
        Scheme::RoloR,
        Scheme::RoloE,
    ];
    // PARAID is not a `Scheme` variant; it runs through `run_trace_spanned`
    // directly, proving the span plumbing is policy-agnostic.
    let jobs: Vec<Option<Scheme>> = schemes.iter().copied().map(Some).chain([None]).collect();
    let runs: Vec<(SimReport, SpanSet)> = parallel_map(jobs, |job| match job {
        Some(scheme) => {
            let cfg = SimConfig::paper_default(scheme, 20);
            rolo_core::run_scheme_spanned(&cfg, profile.generator(dur, cfg.seed), dur)
        }
        None => {
            let cfg = SimConfig::paper_default(Scheme::Raid10, 20);
            let policy = paraid(&cfg, profile.burst_iops);
            let (report, _, spans) =
                rolo_core::run_trace_spanned(&cfg, profile.generator(dur, cfg.seed), policy, dur);
            (report, spans)
        }
    });

    let mut out = Vec::new();
    let mut failures = Vec::new();
    for (report, spans) in &runs {
        expect_consistent(report, &report.scheme);
        spans.validate().expect("span invariants hold");
        let analysis = SpanAnalysis::analyze(&spans.requests);
        let stats = &analysis.all;
        assert_eq!(
            stats.requests, report.user_requests,
            "{}: every completed request must have a span",
            report.scheme
        );
        if stats.attributed_fraction() < MIN_ATTRIBUTED {
            failures.push(format!(
                "{}: only {:.2}% attributed",
                report.scheme,
                stats.attributed_fraction() * 100.0
            ));
        }
        let delayed = spans
            .requests
            .iter()
            .flat_map(|s| &s.legs)
            .filter(|l| l.delayed_by.is_some())
            .count() as u64;
        out.push(SchemeAttribution {
            scheme: report.scheme.clone(),
            trace: trace.to_owned(),
            hours,
            background_spans: spans.background.len(),
            delayed_legs: delayed,
            all: stats.summary(),
            reads: analysis.reads.summary(),
            writes: analysis.writes.summary(),
        });
    }
    // Sort rows by scheme name so the table (and the results JSON) is
    // byte-stable for CI diffs regardless of run scheduling.
    out.sort_by(|a, b| a.scheme.cmp(&b.scheme));
    failures.sort();

    println!("critical-path attribution: {trace} for {hours} h (share of summed response)");
    print!(
        "{:<10} {:>8} {:>9} {:>9} {:>7}",
        "scheme", "requests", "mean", "p99", "attrib"
    );
    for c in COLS {
        print!(" {c:>7}");
    }
    println!(" {:>7}", "unattr");
    let pct = |x: f64| format!("{:.1}%", x * 100.0);
    for row in &out {
        let s = &row.all;
        print!(
            "{:<10} {:>8} {:>7.2}ms {:>7.2}ms {:>7}",
            row.scheme,
            s.requests,
            s.mean_response_ms,
            s.p99_ms.unwrap_or(0.0),
            pct(s.attributed_fraction),
        );
        for share in &s.phases {
            print!(" {:>7}", pct(share.share));
        }
        println!(" {:>7}", pct(1.0 - s.attributed_fraction));
    }

    for row in &out {
        if row.delayed_legs > 0 {
            println!(
                "{}: {} foreground legs delayed by {} background spans",
                row.scheme, row.delayed_legs, row.background_spans
            );
        }
    }

    if top > 0 {
        // Same sort as the table rows: by scheme name, byte-stable.
        let mut by_scheme: Vec<&(SimReport, SpanSet)> = runs.iter().collect();
        by_scheme.sort_by(|a, b| a.0.scheme.cmp(&b.0.scheme));
        println!();
        for (report, spans) in by_scheme {
            top_table(&report.scheme, spans, top);
        }
    }

    rolo_bench::write_results("span_report", &out);

    if !failures.is_empty() {
        eprintln!("attribution below the {:.0}% bar:", MIN_ATTRIBUTED * 100.0);
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    println!(
        "all schemes attribute >= {:.0}% of response time to typed phases",
        MIN_ATTRIBUTED * 100.0
    );
}
