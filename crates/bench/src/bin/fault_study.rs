//! Fault-injection study (§III-C / §IV): sweeps disk-failure timing
//! across every scheme under a live trace replay and reports degraded
//! latency, rebuild-under-load duration and request survival, then
//! cross-validates Monte-Carlo MTTDL against the CTMC closed forms
//! using the *measured* rebuild time as the repair rate.
//!
//! Run with `cargo run --release -p rolo-bench --bin fault_study`.

use rolo_core::{Scheme, SimConfig, SimReport};
use rolo_reliability::closed_form::{self, mttr_days_to_mu};
use rolo_reliability::{models, monte_carlo, MarkovChain};
use rolo_sim::Duration;
use rolo_trace::SyntheticConfig;

const PAIRS: usize = 4;
const TRACE_SECS: u64 = 600;
const FAIL_TIMES: [u64; 2] = [60, 300];
const FAILED_DISK: usize = 1;

/// Shrunk per-disk capacity so a full rebuild fits inside the trace
/// window; the MTTDL section scales the measured rate back up to the
/// paper's disk size.
const TEST_CAPACITY: u64 = 256 << 20;

fn base_cfg(scheme: Scheme) -> SimConfig {
    let mut cfg = SimConfig::paper_default(scheme, PAIRS);
    cfg.disk.capacity_bytes = TEST_CAPACITY;
    cfg.logger_region = 32 << 20;
    cfg.graid_log_capacity = 64 << 20;
    cfg
}

fn workload() -> SyntheticConfig {
    let mut wl = SyntheticConfig::motivation_write_only(60.0);
    wl.write_ratio = 0.7;
    wl
}

fn run(scheme: Scheme, fail_at: Option<u64>) -> SimReport {
    let mut cfg = base_cfg(scheme);
    if let Some(t) = fail_at {
        cfg.faults.disk_failures = vec![(FAILED_DISK, Duration::from_secs(t))];
    }
    // Transient faults ride along at modest rates in every faulted run.
    if fail_at.is_some() {
        cfg.faults.media_error_per_read = 1e-3;
        cfg.faults.timeout_per_io = 1e-3;
    }
    let dur = Duration::from_secs(TRACE_SECS);
    let report = rolo_core::run_scheme(&cfg, workload().generator(dur, 4242), dur);
    report
        .consistency
        .as_ref()
        .unwrap_or_else(|e| panic!("{scheme}: inconsistent after fault run: {e}"));
    report
}

fn ms(d: Option<Duration>) -> f64 {
    d.map_or(f64::NAN, |d| d.as_secs_f64() * 1e3)
}

fn scheme_models(scheme: Scheme, lambda: f64, mu: f64) -> (f64, MarkovChain) {
    match scheme {
        Scheme::Raid10 => (
            closed_form::raid10_4(lambda, mu),
            models::raid10_4(lambda, mu).expect("chain"),
        ),
        Scheme::Graid => (
            closed_form::graid_5(lambda, mu),
            models::graid_5(lambda, mu).expect("chain"),
        ),
        Scheme::RoloP => (
            closed_form::rolo_p_4(lambda, mu),
            models::rolo_p_4(lambda, mu).expect("chain"),
        ),
        Scheme::RoloR => (
            closed_form::rolo_r_4(lambda, mu),
            models::rolo_r_4(lambda, mu).expect("chain"),
        ),
        Scheme::RoloE => (
            closed_form::rolo_e_4(lambda, mu),
            models::rolo_e_4(lambda, mu).expect("chain"),
        ),
    }
}

fn main() {
    println!("== Degraded-mode service under mid-trace disk failure ==");
    println!(
        "{} pairs, {} MB/disk, disk {} fails, {} s trace\n",
        PAIRS,
        TEST_CAPACITY >> 20,
        FAILED_DISK,
        TRACE_SECS
    );
    println!(
        "{:<8} {:>7} {:>10} {:>10} {:>10} {:>9} {:>9} {:>7} {:>7} {:>6}",
        "scheme",
        "fail@s",
        "p95 ms",
        "deg p95",
        "ttfr ms",
        "rebuild s",
        "redirect",
        "retry",
        "lost",
        "reqs"
    );

    // Measured rebuild seconds per scheme (slowest observed), feeding μ.
    let mut measured_rebuild = Vec::new();

    for scheme in Scheme::all() {
        let healthy = run(scheme, None);
        let healthy_p95 = ms(healthy.responses.percentile(95.0));
        let mut worst_rebuild = 0.0f64;
        for fail_at in FAIL_TIMES {
            let r = run(scheme, Some(fail_at));
            assert_eq!(
                r.faults.rebuilds_completed, 1,
                "{scheme}: rebuild did not finish inside the run"
            );
            let rebuild_s = r.faults.rebuild_durations[0].as_secs_f64();
            worst_rebuild = worst_rebuild.max(rebuild_s);
            println!(
                "{:<8} {:>7} {:>10.2} {:>10.2} {:>10.2} {:>9.1} {:>9} {:>7} {:>7} {:>6}",
                scheme.to_string(),
                fail_at,
                healthy_p95,
                ms(r.degraded_responses.percentile(95.0)),
                r.faults
                    .time_to_first_redirect
                    .map_or(f64::NAN, |d| d.as_secs_f64() * 1e3),
                rebuild_s,
                r.faults.reads_redirected,
                r.faults.retries,
                r.faults.io_lost,
                r.user_requests
            );
        }
        measured_rebuild.push((scheme, worst_rebuild));
    }

    println!("\n== MTTDL: Monte Carlo vs CTMC closed forms ==");
    // Scale the measured rebuild rate from the shrunk test disks up to
    // the paper's disk size (rebuild time grows linearly with capacity)
    // and — as in Table III — hold one common repair rate across the
    // schemes, taken conservatively from the slowest measured rebuild.
    let full_capacity = SimConfig::paper_default(Scheme::Raid10, PAIRS)
        .disk
        .capacity_bytes;
    let scale = full_capacity as f64 / TEST_CAPACITY as f64;
    let worst_rebuild_s = measured_rebuild
        .iter()
        .map(|(_, s)| *s)
        .fold(0.0f64, f64::max);
    let mttr_days = worst_rebuild_s * scale / 86_400.0;
    let mu = mttr_days_to_mu(mttr_days);
    let lambda = 1e-5; // per disk-hour, ~11.4-year MTBF
    println!(
        "λ = {lambda}/h; common MTTR = {mttr_days:.3} days \
         (slowest rebuild {worst_rebuild_s:.1} s × {scale:.0} capacity scale)\n"
    );
    println!(
        "{:<8} {:>14} {:>14} {:>10}",
        "scheme", "CTMC (h)", "MC (h)", "MC σ"
    );
    let mut mttdl = Vec::new();
    for (scheme, _) in &measured_rebuild {
        let (cf, chain) = scheme_models(*scheme, lambda, mu);
        let mc = monte_carlo::absorption_time_mc(&chain, 0, 5_000, 99).expect("mc");
        println!(
            "{:<8} {:>14.3e} {:>14.3e} {:>10.2e}",
            scheme.to_string(),
            cf,
            mc.mean,
            mc.std_error
        );
        let rel = (mc.mean - cf).abs() / cf;
        assert!(
            rel < 0.1,
            "{scheme}: MC MTTDL {:.3e} disagrees with CTMC {cf:.3e} ({rel:.1}%)",
            mc.mean
        );
        mttdl.push((*scheme, cf, mc.mean));
    }

    // The paper's reliability claim (Table III): RoLo-R tops RAID10.
    let get = |s: Scheme| mttdl.iter().find(|(x, _, _)| *x == s).unwrap();
    let (_, cf_r10, mc_r10) = get(Scheme::Raid10);
    let (_, cf_rr, mc_rr) = get(Scheme::RoloR);
    assert!(
        cf_rr > cf_r10 && mc_rr > mc_r10,
        "RoLo-R must out-survive RAID10 in both models"
    );
    println!("\nordering check: RoLo-R > RAID10 holds in CTMC and MC — OK");
}
