//! Silent-corruption defense study (DESIGN.md §11): Monte-Carlo sweep
//! of latent sector errors and correlated enclosure shocks across the
//! three RoLo flavors, with the background scrub toggled per cell.
//!
//! Three claims are checked on every invocation:
//!
//! 1. **Zero silent corruption** — across ≥1000 runs (default seeds)
//!    every injected latent extent ends the run classified (repaired by
//!    scrub, repaired on read, overwritten, lost, or still latent);
//!    none is silently forgotten (`FaultMetrics::lse_conserved`).
//! 2. **Power-aware scrubbing pays** — with identical fault schedules,
//!    each flavor's aggregate data loss with the scrub on is no worse
//!    than with it off, and RoLo-E (the flavor that spins disks down
//!    and therefore accrues standby-rate latent errors) repairs a
//!    strictly positive number of extents by scrub.
//! 3. **CTMC and Monte-Carlo MTTDL agree** — the scrub-aware latent
//!    chains (`models::*_4_lse`) show scrub-on MTTDL ≥ scrub-off for
//!    every flavor, both in the exact absorption time and in the
//!    Monte-Carlo estimate, and the exact value falls inside the MC
//!    95 % confidence interval at the validation point.
//!
//! ```text
//! scrub_study [--seeds N] [--check]
//! ```
//!
//! * `--seeds` — Monte-Carlo seeds per (flavor × scrub) cell
//!   (default 167 → 1002 runs across the 6 cells).
//! * `--check` — CI chaos-job mode: same assertions (they always run),
//!   prints an explicit PASS line for the job log.
//!
//! Run with `cargo run --release -p rolo-bench --bin scrub_study`.

use rolo_bench::parallel_map;
use rolo_core::{FaultMetrics, Scheme, SimConfig};
use rolo_reliability::closed_form::mttr_days_to_mu;
use rolo_reliability::{models, monte_carlo, MarkovChain};
use rolo_sim::Duration;
use rolo_trace::SyntheticConfig;
use serde::Serialize;

const PAIRS: usize = 2;
const TRACE_SECS: u64 = 120;

/// Shrunk per-disk capacity so scrub passes and rebuilds complete many
/// times inside the two-minute window.
const TEST_CAPACITY: u64 = 96 << 20;

/// The flavors under study: the paper's three rotated-logging layouts.
const FLAVORS: [Scheme; 3] = [Scheme::RoloP, Scheme::RoloR, Scheme::RoloE];

fn base_cfg(scheme: Scheme, scrub: bool, seed: u64) -> SimConfig {
    let mut cfg = SimConfig::paper_default(scheme, PAIRS);
    cfg.disk.capacity_bytes = TEST_CAPACITY;
    cfg.logger_region = 32 << 20;
    cfg.graid_log_capacity = 64 << 20;
    cfg.seed = 4242 + seed;
    cfg.scrub_enabled = scrub;
    cfg.scrub_chunk = 2 << 20;
    // Aggressive accrual so a two-minute window sees a meaningful
    // population: spun-down disks decay four times faster than active
    // ones (the RoLo-E danger window the scrub exists to close).
    cfg.faults.lse_rate_active = 0.02;
    cfg.faults.lse_rate_standby = 0.08;
    cfg.faults.lse_extent = 64 << 10;
    // Every third seed adds correlated enclosure shocks on top — the
    // randomized multi-fault matrix the CI chaos job sweeps.
    if seed.is_multiple_of(3) {
        cfg.faults.shock_rate = 1.0 / 60.0;
        cfg.faults.shock_fail_prob = 0.2;
        cfg.faults.shock_enclosure = 2;
        cfg.faults.correlation_window = Duration::from_secs(2);
    }
    cfg.faults.seed = 0xFA_17 ^ (seed.wrapping_mul(0x9E37_79B9));
    cfg
}

fn workload() -> SyntheticConfig {
    let mut wl = SyntheticConfig::motivation_write_only(40.0);
    // Reads expose latent extents to the on-read verify path.
    wl.write_ratio = 0.5;
    wl
}

/// One (flavor × scrub) cell: fault-fate counters aggregated over all
/// seeds, plus how many runs saw any data loss at all.
#[derive(Debug, Clone, Serialize)]
struct Cell {
    scheme: String,
    scrub: bool,
    runs: u64,
    injected: u64,
    repaired_on_read: u64,
    repaired_by_scrub: u64,
    overwritten: u64,
    lost: u64,
    latent_at_end: u64,
    scrub_passes: u64,
    scrub_bytes: u64,
    shocks: u64,
    loss_runs: u64,
}

impl Cell {
    fn new(scheme: Scheme, scrub: bool) -> Self {
        Cell {
            scheme: scheme.to_string(),
            scrub,
            runs: 0,
            injected: 0,
            repaired_on_read: 0,
            repaired_by_scrub: 0,
            overwritten: 0,
            lost: 0,
            latent_at_end: 0,
            scrub_passes: 0,
            scrub_bytes: 0,
            shocks: 0,
            loss_runs: 0,
        }
    }

    fn absorb(&mut self, f: &FaultMetrics) {
        self.runs += 1;
        self.injected += f.lse_injected;
        self.repaired_on_read += f.lse_repaired_on_read;
        self.repaired_by_scrub += f.lse_repaired_by_scrub;
        self.overwritten += f.lse_overwritten;
        self.lost += f.lse_lost;
        self.latent_at_end += f.lse_latent_at_end;
        self.scrub_passes += f.scrub_passes;
        self.scrub_bytes += f.scrub_bytes;
        self.shocks += f.shocks_injected;
        self.loss_runs += u64::from(f.lse_lost > 0);
    }

    /// Fraction of injected extents that were ultimately lost.
    fn loss_frac(&self) -> f64 {
        if self.injected == 0 {
            0.0
        } else {
            self.lost as f64 / self.injected as f64
        }
    }
}

#[derive(Debug, Clone, Serialize)]
struct MttdlRow {
    scheme: String,
    lse_per_hour: f64,
    scrub_per_hour: f64,
    mttdl_scrub_off_h: f64,
    mttdl_scrub_on_h: f64,
}

#[derive(Debug, Clone, Serialize)]
struct Study {
    trace_secs: u64,
    seeds_per_cell: u64,
    total_runs: u64,
    cells: Vec<Cell>,
    mttdl: Vec<MttdlRow>,
}

/// Runs one seed of one cell and returns its fault counters after the
/// conservation audit.
fn run_one(scheme: Scheme, scrub: bool, seed: u64) -> FaultMetrics {
    let cfg = base_cfg(scheme, scrub, seed);
    let dur = Duration::from_secs(TRACE_SECS);
    let report = rolo_core::run_scheme(&cfg, workload().generator(dur, cfg.seed), dur);
    rolo_bench::expect_consistent(&report, &format!("{scheme} scrub={scrub} seed={seed}"));
    let f = &report.faults;
    assert!(
        f.lse_conserved(),
        "{scheme} scrub={scrub} seed={seed}: silent corruption — injected {} but classified {}",
        f.lse_injected,
        f.lse_classified()
    );
    report.faults
}

/// The measured scrub-on / scrub-off cells for every flavor.
fn sweep(seeds: u64) -> Vec<Cell> {
    let jobs: Vec<(Scheme, bool, u64)> = FLAVORS
        .iter()
        .flat_map(|&s| {
            (0..seeds).flat_map(move |seed| [(s, false, seed), (s, true, seed)].into_iter())
        })
        .collect();
    let metrics = parallel_map(jobs.clone(), |(scheme, scrub, seed)| {
        run_one(scheme, scrub, seed)
    });
    let mut cells: Vec<Cell> = FLAVORS
        .iter()
        .flat_map(|&s| [Cell::new(s, false), Cell::new(s, true)].into_iter())
        .collect();
    for ((scheme, scrub, _), f) in jobs.iter().zip(&metrics) {
        let cell = cells
            .iter_mut()
            .find(|c| c.scheme == scheme.to_string() && c.scrub == *scrub)
            .expect("cell exists");
        cell.absorb(f);
    }
    cells
}

/// Scrub-aware CTMC MTTDL table at rates measured from the sweep,
/// with the scrub rate de-rated to the paper's full disk capacity (a
/// bigger disk takes proportionally longer to scan).
fn mttdl_table(cells: &[Cell], seeds: u64) -> Vec<MttdlRow> {
    type Flavor = fn(f64, f64, f64, f64) -> Result<MarkovChain, rolo_reliability::CtmcError>;
    let flavors: [(Scheme, Flavor); 3] = [
        (Scheme::RoloP, models::rolo_p_4_lse),
        (Scheme::RoloR, models::rolo_r_4_lse),
        (Scheme::RoloE, models::rolo_e_4_lse),
    ];
    let lambda = 1e-5; // whole-disk failures per disk-hour
    let mu = mttr_days_to_mu(3.0);
    let disk_hours = seeds as f64 * 2.0 * PAIRS as f64 * TRACE_SECS as f64 / 3600.0;
    let paper_capacity = SimConfig::paper_default(Scheme::RoloP, PAIRS)
        .disk
        .capacity_bytes;
    let capacity_scale = paper_capacity as f64 / TEST_CAPACITY as f64;
    let mut rows = Vec::new();
    for (scheme, flavor) in flavors {
        let name = scheme.to_string();
        let off = cells
            .iter()
            .find(|c| c.scheme == name && !c.scrub)
            .expect("off cell");
        let on = cells
            .iter()
            .find(|c| c.scheme == name && c.scrub)
            .expect("on cell");
        let lse_per_hour = off.injected as f64 / disk_hours;
        assert!(
            on.scrub_passes > 0,
            "{name}: scrub-on cell completed no scrub passes"
        );
        let passes_per_disk_hour =
            on.scrub_passes as f64 / (2.0 * PAIRS as f64) / (on.runs as f64 * TRACE_SECS as f64)
                * 3600.0;
        let scrub_per_hour = passes_per_disk_hour / capacity_scale;
        let mttdl_off = flavor(lambda, mu, lse_per_hour, 0.0)
            .and_then(|c| c.absorption_time(0))
            .expect("scrub-off chain");
        let mttdl_on = flavor(lambda, mu, lse_per_hour, scrub_per_hour)
            .and_then(|c| c.absorption_time(0))
            .expect("scrub-on chain");
        assert!(
            mttdl_on >= mttdl_off,
            "{name}: CTMC says scrubbing hurts MTTDL ({mttdl_on:.3e} < {mttdl_off:.3e})"
        );
        rows.push(MttdlRow {
            scheme: name,
            lse_per_hour,
            scrub_per_hour,
            mttdl_scrub_off_h: mttdl_off,
            mttdl_scrub_on_h: mttdl_on,
        });
    }
    rows
}

/// Cross-validates the scrub-aware chains against Monte-Carlo
/// absorption sampling at a fixed validation point (rates chosen so MC
/// converges quickly): ordering must agree and the exact value must
/// fall inside the widened 95 % confidence interval.
fn cross_validate_mc() {
    type Flavor = fn(f64, f64, f64, f64) -> Result<MarkovChain, rolo_reliability::CtmcError>;
    let flavors: [(&str, Flavor); 3] = [
        ("RoLo-P", models::rolo_p_4_lse),
        ("RoLo-R", models::rolo_r_4_lse),
        ("RoLo-E", models::rolo_e_4_lse),
    ];
    let (l, m, lse, scrub) = (1e-3, 0.05, 1e-2, 0.5);
    println!("\nCTMC vs Monte-Carlo cross-validation (l={l}, m={m}, lse={lse}, scrub={scrub}):");
    println!(
        "{:<8} {:>14} {:>14} {:>14} {:>14}",
        "flavor", "exact off", "exact on", "mc off", "mc on"
    );
    for (name, flavor) in flavors {
        let chain_off = flavor(l, m, lse, 0.0).expect("chain");
        let chain_on = flavor(l, m, lse, scrub).expect("chain");
        let exact_off = chain_off.absorption_time(0).expect("absorption");
        let exact_on = chain_on.absorption_time(0).expect("absorption");
        let mc_off = monte_carlo::absorption_time_mc(&chain_off, 0, 4_000, 11).expect("mc");
        let mc_on = monte_carlo::absorption_time_mc(&chain_on, 0, 4_000, 13).expect("mc");
        assert!(
            exact_on >= exact_off,
            "{name}: exact ordering violated ({exact_on:.3e} < {exact_off:.3e})"
        );
        assert!(
            mc_on.mean >= mc_off.mean,
            "{name}: MC ordering violated ({:.3e} < {:.3e})",
            mc_on.mean,
            mc_off.mean
        );
        for (exact, mc) in [(exact_off, &mc_off), (exact_on, &mc_on)] {
            let (lo, hi) = mc.confidence_95();
            assert!(
                exact >= lo * 0.9 && exact <= hi * 1.1,
                "{name}: exact {exact:.4e} outside widened MC CI [{lo:.4e}, {hi:.4e}]"
            );
        }
        println!(
            "{:<8} {:>14.4e} {:>14.4e} {:>14.4e} {:>14.4e}",
            name, exact_off, exact_on, mc_off.mean, mc_on.mean
        );
    }
}

fn main() {
    let mut seeds: u64 = 167;
    let mut check = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--seeds" => {
                seeds = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--seeds wants a positive integer");
                        std::process::exit(2);
                    });
            }
            "--check" => check = true,
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    let cells = sweep(seeds);
    let total_runs: u64 = cells.iter().map(|c| c.runs).sum();
    println!(
        "scrub study: {} flavors x scrub on/off x {} seeds = {} runs, all conserved",
        FLAVORS.len(),
        seeds,
        total_runs
    );
    println!(
        "\n{:<8} {:>6} {:>9} {:>9} {:>9} {:>9} {:>7} {:>8} {:>9} {:>9}",
        "scheme",
        "scrub",
        "injected",
        "rd-read",
        "rd-scrub",
        "overwr",
        "lost",
        "latent",
        "loss-run",
        "loss-frac"
    );
    for c in &cells {
        println!(
            "{:<8} {:>6} {:>9} {:>9} {:>9} {:>9} {:>7} {:>8} {:>9} {:>9.4}",
            c.scheme,
            if c.scrub { "on" } else { "off" },
            c.injected,
            c.repaired_on_read,
            c.repaired_by_scrub,
            c.overwritten,
            c.lost,
            c.latent_at_end,
            c.loss_runs,
            c.loss_frac()
        );
    }

    // Claim 2: with identical fault schedules, turning the scrub on
    // never increases a flavor's aggregate loss fraction, and RoLo-E —
    // the power-managed flavor whose spun-down disks decay fastest —
    // both repairs extents by scrub and strictly shrinks its loss.
    for flavor in FLAVORS {
        let name = flavor.to_string();
        let off = cells.iter().find(|c| c.scheme == name && !c.scrub).unwrap();
        let on = cells.iter().find(|c| c.scheme == name && c.scrub).unwrap();
        assert!(on.injected > 0 && off.injected > 0, "{name}: no injections");
        // Fault schedules are seed-identical across the on/off cells,
        // so absolute loss counts compare like-for-like.
        assert!(
            on.lost <= off.lost,
            "{name}: scrub-on lost {} extents, more than scrub-off's {}",
            on.lost,
            off.lost
        );
        assert!(
            on.repaired_by_scrub > 0,
            "{name}: scrub-on cell repaired nothing by scrub"
        );
        assert!(
            on.latent_at_end < off.latent_at_end,
            "{name}: scrub did not shrink the end-of-run latent population \
             ({} vs {})",
            on.latent_at_end,
            off.latent_at_end
        );
    }
    let e_off = cells
        .iter()
        .find(|c| c.scheme == Scheme::RoloE.to_string() && !c.scrub)
        .unwrap();
    let e_on = cells
        .iter()
        .find(|c| c.scheme == Scheme::RoloE.to_string() && c.scrub)
        .unwrap();
    assert!(
        e_on.lost <= e_off.lost,
        "RoLo-E: power-aware scrubbing failed to cut data loss ({} vs {})",
        e_on.lost,
        e_off.lost
    );
    println!(
        "\npower-aware scrubbing: RoLo-E lost {} extents with scrub on vs {} off",
        e_on.lost, e_off.lost
    );

    let mttdl = mttdl_table(&cells, seeds);
    println!(
        "\n{:<8} {:>12} {:>12} {:>16} {:>16}",
        "scheme", "lse/h", "scrub/h", "MTTDL off (h)", "MTTDL on (h)"
    );
    for r in &mttdl {
        println!(
            "{:<8} {:>12.4} {:>12.6} {:>16.4e} {:>16.4e}",
            r.scheme, r.lse_per_hour, r.scrub_per_hour, r.mttdl_scrub_off_h, r.mttdl_scrub_on_h
        );
    }

    cross_validate_mc();

    let study = Study {
        trace_secs: TRACE_SECS,
        seeds_per_cell: seeds,
        total_runs,
        cells,
        mttdl,
    };
    rolo_bench::write_results("scrub_study", &study);
    if check {
        println!("scrub_study --check passed: {total_runs} runs conserved, orderings hold");
    }
}
