//! Tables II, III and VI: configuration parameters and trace
//! characteristics.
//!
//! Emits the disk/RAID parameters the simulator uses (Table II) and, for
//! each calibrated trace profile, the paper's published characteristics
//! next to the statistics measured over an actual generated week — a
//! self-check that the synthetic substitution matches its calibration
//! targets.

use rolo_bench::{week, week_secs};
use rolo_disk::DiskParams;
use rolo_trace::{profiles, TraceStats};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct TraceRow {
    name: String,
    target_write_ratio: f64,
    measured_write_ratio: f64,
    target_burst_iops: f64,
    measured_iops: f64,
    target_avg_kb: f64,
    measured_avg_kb: f64,
    target_volume_gb: f64,
    measured_volume_gb: f64,
}

fn main() {
    let p = DiskParams::ultrastar_36z15();
    println!("Table II — disk and RAID configuration");
    println!("  model                : {}", p.model);
    println!(
        "  capacity             : {:.1} GB",
        p.capacity_bytes as f64 / 1e9
    );
    println!("  rotation speed       : {} RPM", p.rpm);
    println!(
        "  avg seek / rotation  : {} / {}",
        p.avg_seek,
        p.avg_rotation()
    );
    println!(
        "  sustained rate       : {} MB/s",
        p.transfer_rate / (1024 * 1024)
    );
    println!(
        "  power A/I/S          : {} / {} / {} W",
        p.power_active_w, p.power_idle_w, p.power_standby_w
    );
    println!(
        "  spin down/up energy  : {} / {} J",
        p.spin_down_energy_j, p.spin_up_energy_j
    );
    println!(
        "  spin down/up time    : {} / {}",
        p.spin_down_time, p.spin_up_time
    );
    println!("  stripe units         : 16 KB / 32 KB / 64 KB");
    println!("  disks                : 20 / 30 / 40 (+1 for GRAID)");
    println!("  free space per disk  : 8 / 6 / 4 GB (16 GB GRAID log)");

    println!(
        "\nTables III & VI — trace characteristics (paper target vs generated, {} h window)",
        week_secs() / 3600
    );
    println!(
        "{:<8} {:>9} {:>9} {:>8} {:>8} {:>8} {:>8} {:>9} {:>9}",
        "trace", "wr%", "wr%*", "IOPS", "IOPS*", "avgKB", "avgKB*", "volGB", "volGB*"
    );
    println!(
        "{:<8} (paper targets; * = measured on the synthetic trace)",
        ""
    );

    let dur = week();
    let scale = rolo_bench::week_scale();
    let rows: Vec<TraceRow> = rolo_bench::parallel_map(profiles::all(), |p| {
        let recs: Vec<_> = p.generator(dur, 0xace).collect();
        let s = TraceStats::from_records(&recs, dur);
        TraceRow {
            name: p.name.to_owned(),
            target_write_ratio: p.write_ratio,
            measured_write_ratio: s.write_ratio,
            target_burst_iops: p.burst_iops,
            measured_iops: s.iops / p.duty_cycle().max(1e-9),
            target_avg_kb: p.avg_req_bytes as f64 / 1024.0,
            measured_avg_kb: s.avg_req_bytes / 1024.0,
            target_volume_gb: p.week_write_volume as f64 * scale / f64::from(1 << 30),
            measured_volume_gb: s.bytes_written as f64 / f64::from(1 << 30),
        }
    });
    for r in &rows {
        println!(
            "{:<8} {:>8.1}% {:>8.1}% {:>8.2} {:>8.2} {:>8.1} {:>8.1} {:>9.2} {:>9.2}",
            r.name,
            r.target_write_ratio * 100.0,
            r.measured_write_ratio * 100.0,
            r.target_burst_iops,
            r.measured_iops,
            r.target_avg_kb,
            r.measured_avg_kb,
            r.target_volume_gb,
            r.measured_volume_gb,
        );
    }
    rolo_bench::write_results("table_traces", &rows);
}
