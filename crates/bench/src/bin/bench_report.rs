//! Performance-trajectory reporter: runs the fixed smoke workload
//! matrix (every scheme × four contrasting MSR profiles) and writes
//! `BENCH_sim.json` at the repo root — simulated response percentiles,
//! energy and the simulator's own wall-clock throughput
//! (events/sec from [`rolo_obs::RunProfile`]). Successive commits of the
//! file chart how both the modelled system and the simulator itself
//! move over time.
//!
//! ```text
//! bench_report [--out PATH] [--check BASELINE]
//! ```
//!
//! * `--out`   — output path (default `BENCH_sim.json`)
//! * `--check` — compare events/sec per matrix cell against a committed
//!   baseline JSON and exit non-zero if any cell regressed by more than
//!   25 % (the CI gate). The matrix runs in parallel, so a cell's
//!   one-shot wall clock can lose 30 %+ to scheduler contention alone;
//!   any cell that trips the gate is re-measured serially and the better
//!   observation kept before a regression is declared — genuine hot-path
//!   blowups stay slow when run alone, contention noise does not.
//!   Simulated metrics are informational only: they move when the model
//!   changes, which is often the point of a PR.
//!
//! The window defaults to one simulated hour per cell; `ROLO_WEEK_SECS`
//! overrides it (the smoke convention).

use rolo_bench::parallel_map;
use rolo_core::{Scheme, SimConfig, SimReport};
use rolo_sim::Duration;
use serde::{Serialize, Value};

/// Allowed events/sec slowdown vs the committed baseline before the
/// `--check` gate fails (25 % regression budget — generous enough for
/// shared-runner noise, tight enough to catch hot-path blowups).
const MAX_REGRESSION: f64 = 0.25;

/// The fixed matrix: every driver-reachable scheme...
const SCHEMES: [Scheme; 5] = [
    Scheme::Raid10,
    Scheme::Graid,
    Scheme::RoloP,
    Scheme::RoloR,
    Scheme::RoloE,
];

/// ...crossed with four contrasting MSR profiles: write-heavy
/// (src2_2), read-leaning with a spin-up-hostile tail (hm_1),
/// write-dominated project directories (proj_0) and low-rate web/SQL
/// traffic (web_1).
const TRACES: [&str; 4] = ["src2_2", "hm_1", "proj_0", "web_1"];

#[derive(Debug, Clone, Serialize)]
struct Cell {
    scheme: String,
    trace: String,
    requests: u64,
    mean_response_ms: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    energy_j: f64,
    spin_cycles: u64,
    events_processed: u64,
    wall_ms: f64,
    events_per_sec: f64,
}

#[derive(Debug, Clone, Serialize)]
struct Bench {
    /// Simulated seconds per matrix cell.
    window_secs: u64,
    matrix: Vec<Cell>,
}

fn cell(scheme: Scheme, trace: &str, dur: Duration) -> Cell {
    let cfg = SimConfig::paper_default(scheme, 20);
    let profile = rolo_trace::profiles::by_name(trace).expect("unknown trace profile");
    let report: SimReport = rolo_core::run_scheme(&cfg, profile.generator(dur, cfg.seed), dur);
    rolo_bench::expect_consistent(&report, &format!("{trace} {}", report.scheme));
    let p = |q: f64| {
        report
            .responses
            .percentile(q)
            .map(|d| d.as_millis_f64())
            .unwrap_or(0.0)
    };
    Cell {
        scheme: report.scheme.clone(),
        trace: trace.to_owned(),
        requests: report.user_requests,
        mean_response_ms: report.mean_response_ms(),
        p50_ms: p(50.0),
        p95_ms: p(95.0),
        p99_ms: p(99.0),
        energy_j: report.total_energy_j,
        spin_cycles: report.spin_cycles,
        events_processed: report.profile.events_processed,
        wall_ms: report.profile.wall_total_us as f64 / 1e3,
        events_per_sec: report.profile.events_per_sec,
    }
}

/// Per-cell events/sec from a committed baseline JSON (the vendored
/// serde stub only deserializes into `Value`, so this walks the tree).
fn baseline_throughput(json: &Value) -> Vec<(String, String, f64)> {
    let mut out = Vec::new();
    let Some(cells) = json.get("matrix").and_then(Value::as_array) else {
        return out;
    };
    for c in cells {
        let scheme = c.get("scheme").and_then(Value::as_str);
        let trace = c.get("trace").and_then(Value::as_str);
        let eps = c.get("events_per_sec").and_then(Value::as_f64);
        if let (Some(s), Some(t), Some(e)) = (scheme, trace, eps) {
            out.push((s.to_owned(), t.to_owned(), e));
        }
    }
    out
}

/// Cells slower than the baseline by more than the budget, as
/// `(matrix index, human-readable detail)`.
fn regressions(baseline: &[(String, String, f64)], current: &Bench) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (i, new) in current.matrix.iter().enumerate() {
        let Some((_, _, old_eps)) = baseline
            .iter()
            .find(|(s, t, _)| *s == new.scheme && *t == new.trace)
        else {
            continue; // new cell: nothing to regress against
        };
        if *old_eps > 0.0 && new.events_per_sec < old_eps * (1.0 - MAX_REGRESSION) {
            out.push((
                i,
                format!(
                    "{}/{}: {:.0} events/s vs baseline {:.0} ({:.1}% slower)",
                    new.scheme,
                    new.trace,
                    new.events_per_sec,
                    old_eps,
                    (1.0 - new.events_per_sec / old_eps) * 100.0
                ),
            ));
        }
    }
    out
}

fn main() {
    let mut out_path = "BENCH_sim.json".to_owned();
    let mut baseline_path: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--out" => out_path = val("--out"),
            "--check" => baseline_path = Some(val("--check")),
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    let window_secs = std::env::var("ROLO_WEEK_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3600);
    let dur = Duration::from_secs(window_secs);

    let jobs: Vec<(Scheme, &str)> = SCHEMES
        .iter()
        .flat_map(|&s| TRACES.iter().map(move |&t| (s, t)))
        .collect();
    let matrix = parallel_map(jobs.clone(), |(scheme, trace)| cell(scheme, trace, dur));
    let mut bench = Bench {
        window_secs,
        matrix,
    };

    println!(
        "{:<8} {:<8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>12}",
        "scheme", "trace", "requests", "p50", "p95", "p99", "energy", "events/s"
    );
    for c in &bench.matrix {
        println!(
            "{:<8} {:<8} {:>9} {:>7.2}ms {:>7.2}ms {:>7.2}ms {:>9} {:>12.0}",
            c.scheme,
            c.trace,
            c.requests,
            c.p50_ms,
            c.p95_ms,
            c.p99_ms,
            rolo_bench::mj(c.energy_j),
            c.events_per_sec
        );
    }

    if let Some(path) = &baseline_path {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(2);
        });
        let baseline = serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse baseline {path}: {e}");
            std::process::exit(2);
        });
        let base = baseline_throughput(&baseline);
        let mut failed = regressions(&base, &bench);
        if !failed.is_empty() {
            eprintln!(
                "{} cell(s) over the regression budget; re-measuring serially \
                 to rule out parallel-run contention",
                failed.len()
            );
            for &(i, _) in &failed {
                let (scheme, trace) = jobs[i];
                let again = cell(scheme, trace, dur);
                if again.events_per_sec > bench.matrix[i].events_per_sec {
                    bench.matrix[i] = again;
                }
            }
            failed = regressions(&base, &bench);
        }
        if failed.is_empty() {
            println!(
                "events/sec within {:.0}% of baseline {path} for all {} cells",
                MAX_REGRESSION * 100.0,
                bench.matrix.len()
            );
        } else {
            eprintln!("simulator throughput regressed >25% vs {path}:");
            for (_, r) in &failed {
                eprintln!("  {r}");
            }
            std::process::exit(1);
        }
    }

    let json = serde_json::to_string_pretty(&bench).expect("serialise BENCH_sim");
    std::fs::write(&out_path, json + "\n").unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("performance trajectory written to {out_path}");
}
