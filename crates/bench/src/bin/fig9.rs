//! Figure 9: MTTDL (years) as a function of MTTR (1–7 days) for RAID10,
//! GRAID, RoLo-P and RoLo-R, at λ = 1/100 000 h.
//!
//! Reproduces both the paper's closed forms (Eqs. 1–4, what the figure
//! plots) and our explicit CTMC models as a cross-check, and prints the
//! headline comparisons the paper calls out (+33 % for RoLo-R over
//! RAID10, −20 % for RoLo-P, −33 % for GRAID).

use rolo_reliability::{closed_form, hours_to_years, models};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    mttr_days: f64,
    raid10_years: f64,
    graid_years: f64,
    rolo_p_years: f64,
    rolo_r_years: f64,
    rolo_e_years: f64,
    /// CTMC cross-check values (model reconstruction).
    ctmc_raid10_years: f64,
    ctmc_rolo_r_years: f64,
}

fn main() {
    let lambda = closed_form::PAPER_LAMBDA_PER_HOUR;
    println!("Figure 9: MTTDL vs MTTR (lambda = 1e-5 / hour)");
    println!(
        "{:>5} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "days", "RoLo-R", "RAID10", "RoLo-P", "GRAID", "RoLo-E"
    );
    let mut rows = Vec::new();
    for d in 1..=7 {
        let mttr = d as f64;
        let mu = closed_form::mttr_days_to_mu(mttr);
        let row = Row {
            mttr_days: mttr,
            raid10_years: hours_to_years(closed_form::raid10_4(lambda, mu)),
            graid_years: hours_to_years(closed_form::graid_5(lambda, mu)),
            rolo_p_years: hours_to_years(closed_form::rolo_p_4(lambda, mu)),
            rolo_r_years: hours_to_years(closed_form::rolo_r_4(lambda, mu)),
            rolo_e_years: hours_to_years(closed_form::rolo_e_4(lambda, mu)),
            ctmc_raid10_years: hours_to_years(
                models::raid10_4(lambda, mu)
                    .unwrap()
                    .absorption_time(0)
                    .unwrap(),
            ),
            ctmc_rolo_r_years: hours_to_years(
                models::rolo_r_4(lambda, mu)
                    .unwrap()
                    .absorption_time(0)
                    .unwrap(),
            ),
        };
        println!(
            "{:>5} {:>10.0} {:>10.0} {:>10.0} {:>10.0} {:>10.0}",
            d,
            row.rolo_r_years,
            row.raid10_years,
            row.rolo_p_years,
            row.graid_years,
            row.rolo_e_years
        );
        rows.push(row);
    }

    let mu1 = closed_form::mttr_days_to_mu(1.0);
    println!(
        "\nRoLo-R vs RAID10 : {:+.1} % (paper: up to +33 %)",
        (closed_form::rolo_r_4(lambda, mu1) / closed_form::raid10_4(lambda, mu1) - 1.0) * 100.0
    );
    println!(
        "RoLo-P vs RAID10 : {:+.1} % (paper: up to -20 %)",
        (closed_form::rolo_p_4(lambda, mu1) / closed_form::raid10_4(lambda, mu1) - 1.0) * 100.0
    );
    println!(
        "GRAID  vs RAID10 : {:+.1} % (paper: up to -33 %)",
        (closed_form::graid_5(lambda, mu1) / closed_form::raid10_4(lambda, mu1) - 1.0) * 100.0
    );
    println!(
        "RoLo-E vs RAID10 : {:.2}x (paper: n = 2x, all-write workloads only)",
        closed_form::rolo_e_4(lambda, mu1) / closed_form::raid10_4(lambda, mu1)
    );

    rolo_bench::write_results("fig9", &rows);
}
