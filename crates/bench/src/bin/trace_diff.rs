//! Regression triage between two `metrics_export` JSON documents
//! (DESIGN.md §12): where did two runs of the same workload part ways,
//! and by how much?
//!
//! ```text
//! trace_diff <a.json> <b.json> [--check]
//!            [--max-mean-delta-pct P]      (default 5.0)
//!            [--max-requests-delta-pct P]  (default 1.0)
//!            [--max-phase-shift-pts P]     (default 5.0)
//! ```
//!
//! Prints, in order:
//!
//! 1. headline report deltas (requests, mean/p95/p99 response, energy,
//!    spin cycles);
//! 2. the event-stream divergence point — the first telemetry window
//!    whose per-window FNV event checksum differs (seed-identical runs
//!    of the same build diverge nowhere; a behavioral change shows up
//!    as the window where its first event landed);
//! 3. per-window metric deltas — for every series both runs exported,
//!    how many shared windows differ and the largest relative delta
//!    (counters compare window deltas, gauges window means, quantile
//!    series window p95);
//! 4. critical-path phase-attribution shifts in percentage points;
//! 5. SLO alert counts per (objective, signal) on each side.
//!
//! `--check` turns thresholds into a CI gate: exit 1 when either file
//! is malformed, the runs' scheme/trace/window length disagree, the
//! mean-response or request-count delta exceeds its bound, or any
//! phase share shifts by more than the bound. A self-compare must
//! report zero divergence and pass with all deltas exactly 0.

use serde::Value;
use std::collections::BTreeMap;

struct Args {
    a: String,
    b: String,
    check: bool,
    max_mean_delta_pct: f64,
    max_requests_delta_pct: f64,
    max_phase_shift_pts: f64,
}

fn parse_args() -> Args {
    let mut files = Vec::new();
    let mut check = false;
    let mut max_mean_delta_pct = 5.0;
    let mut max_requests_delta_pct = 1.0;
    let mut max_phase_shift_pts = 5.0;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> f64 {
            it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                eprintln!("missing/invalid value for {name}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--check" => check = true,
            "--max-mean-delta-pct" => max_mean_delta_pct = val("--max-mean-delta-pct"),
            "--max-requests-delta-pct" => max_requests_delta_pct = val("--max-requests-delta-pct"),
            "--max-phase-shift-pts" => max_phase_shift_pts = val("--max-phase-shift-pts"),
            "--help" | "-h" => {
                eprintln!("see the module docs at the top of trace_diff.rs");
                std::process::exit(0);
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
            other => files.push(other.to_owned()),
        }
    }
    if files.len() != 2 {
        eprintln!("usage: trace_diff <a.json> <b.json> [--check] [thresholds]");
        std::process::exit(2);
    }
    Args {
        a: files.remove(0),
        b: files.remove(0),
        check,
        max_mean_delta_pct,
        max_requests_delta_pct,
        max_phase_shift_pts,
    }
}

fn load(path: &str) -> Value {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("{path}: malformed export JSON: {e}");
        std::process::exit(1);
    })
}

fn num(v: &Value) -> f64 {
    v.as_f64().unwrap_or(0.0)
}

/// Percent change B vs A; 0 when both sides are 0.
fn pct_delta(a: f64, b: f64) -> f64 {
    if a == b {
        0.0
    } else if a == 0.0 {
        f64::INFINITY
    } else {
        (b - a) / a * 100.0
    }
}

/// The scalar each series kind is compared on, per window.
fn window_scalar(kind: &str, value: &Value) -> Option<f64> {
    match kind {
        "Counter" => value.get("Counter").map(|c| num(&c["delta"])),
        "Gauge" => value.get("Gauge").map(|g| num(&g["mean"])),
        "Quantile" => value.get("Quantile").map(|q| {
            let p95 = &q["p95"];
            if p95.is_null() {
                // Idle windows compare on count (0 == 0 stays equal).
                num(&q["count"])
            } else {
                num(p95)
            }
        }),
        _ => None,
    }
}

/// (series name, kind) → window index → (scalar, full value rendering).
type SeriesWindows = BTreeMap<(String, String), BTreeMap<u64, (f64, String)>>;

fn series_windows(doc: &Value) -> SeriesWindows {
    let mut out = SeriesWindows::new();
    let Some(series) = doc["telemetry"]["series"].as_array() else {
        return out;
    };
    for s in series {
        let name = s["name"].as_str().unwrap_or("?").to_owned();
        let kind = s["kind"].as_str().unwrap_or("?").to_owned();
        let mut windows = BTreeMap::new();
        if let Some(ws) = s["windows"].as_array() {
            for w in ws {
                let idx = w["window"].as_u64().unwrap_or(0);
                let scalar = window_scalar(&kind, &w["value"]).unwrap_or(0.0);
                windows.insert(idx, (scalar, w["value"].to_string()));
            }
        }
        out.insert((name, kind), windows);
    }
    out
}

fn alert_counts(doc: &Value) -> BTreeMap<(String, String), u64> {
    let mut out = BTreeMap::new();
    if let Some(alerts) = doc["slo_alerts"].as_array() {
        for a in alerts {
            let key = (
                a["slo"].as_str().unwrap_or("?").to_owned(),
                a["signal"].as_str().unwrap_or("?").to_owned(),
            );
            *out.entry(key).or_default() += 1;
        }
    }
    out
}

fn main() {
    let args = parse_args();
    let a = load(&args.a);
    let b = load(&args.b);
    let mut violations: Vec<String> = Vec::new();

    let meta = |d: &Value, k: &str| d["meta"][k].to_string();
    println!(
        "A: {} ({} on {}, {} h, seed {})",
        args.a,
        meta(&a, "scheme"),
        meta(&a, "trace"),
        meta(&a, "hours"),
        meta(&a, "seed")
    );
    println!(
        "B: {} ({} on {}, {} h, seed {})",
        args.b,
        meta(&b, "scheme"),
        meta(&b, "trace"),
        meta(&b, "hours"),
        meta(&b, "seed")
    );
    for k in ["scheme", "trace", "window_us"] {
        if a["meta"][k] != b["meta"][k] {
            violations.push(format!(
                "meta mismatch: {k} {} vs {}",
                meta(&a, k),
                meta(&b, k)
            ));
        }
    }

    // 1. Headline report deltas.
    println!("\nreport deltas (B vs A):");
    let report_fields = [
        ("user_requests", "requests"),
        ("mean_response_ms", "mean response (ms)"),
        ("p95_response_ms", "p95 response (ms)"),
        ("p99_response_ms", "p99 response (ms)"),
        ("total_energy_j", "energy (J)"),
        ("spin_cycles", "spin cycles"),
    ];
    let mut mean_delta_pct = 0.0;
    let mut requests_delta_pct = 0.0;
    for (key, label) in report_fields {
        let (va, vb) = (num(&a["report"][key]), num(&b["report"][key]));
        let d = pct_delta(va, vb);
        println!("{label:>20}: {va:>14.3} -> {vb:>14.3} ({d:>+8.2}%)");
        match key {
            "mean_response_ms" => mean_delta_pct = d,
            "user_requests" => requests_delta_pct = d,
            _ => {}
        }
    }

    // 2. Event-stream divergence point.
    let checksums = |d: &Value| -> BTreeMap<u64, (u64, u64)> {
        d["event_checksums"]
            .as_array()
            .map(|cs| {
                cs.iter()
                    .map(|c| {
                        (
                            c["window"].as_u64().unwrap_or(0),
                            (
                                c["fnv"].as_u64().unwrap_or(0),
                                c["events"].as_u64().unwrap_or(0),
                            ),
                        )
                    })
                    .collect()
            })
            .unwrap_or_default()
    };
    let (ca, cb) = (checksums(&a), checksums(&b));
    let all_windows: std::collections::BTreeSet<u64> =
        ca.keys().chain(cb.keys()).copied().collect();
    let mut divergence: Option<u64> = None;
    let mut diverged_windows = 0u64;
    for &w in &all_windows {
        if ca.get(&w) != cb.get(&w) {
            diverged_windows += 1;
            divergence.get_or_insert(w);
        }
    }
    match divergence {
        None => println!("\nevent streams: zero divergence ({} windows)", ca.len()),
        Some(w) => {
            let describe = |c: Option<&(u64, u64)>| match c {
                Some((fnv, n)) => format!("{n} events, fnv {fnv:016x}"),
                None => "absent".to_owned(),
            };
            println!(
                "\nevent streams diverge at window {w} ({} of {} windows differ)",
                diverged_windows,
                all_windows.len()
            );
            println!("  A: {}", describe(ca.get(&w)));
            println!("  B: {}", describe(cb.get(&w)));
        }
    }

    // 3. Per-window metric deltas.
    let (sa, sb) = (series_windows(&a), series_windows(&b));
    struct SeriesDelta {
        name: String,
        differing: u64,
        shared: u64,
        max_delta_pct: f64,
        at_window: u64,
    }
    let mut deltas: Vec<SeriesDelta> = Vec::new();
    for (key, wa) in &sa {
        let Some(wb) = sb.get(key) else {
            println!("series only in A: {}", key.0);
            continue;
        };
        let mut d = SeriesDelta {
            name: key.0.clone(),
            differing: 0,
            shared: 0,
            max_delta_pct: 0.0,
            at_window: 0,
        };
        for (w, (scalar_a, raw_a)) in wa {
            let Some((scalar_b, raw_b)) = wb.get(w) else {
                continue;
            };
            d.shared += 1;
            if raw_a != raw_b {
                d.differing += 1;
                let p = pct_delta(*scalar_a, *scalar_b).abs();
                if p >= d.max_delta_pct {
                    d.max_delta_pct = p;
                    d.at_window = *w;
                }
            }
        }
        if d.differing > 0 {
            deltas.push(d);
        }
    }
    for key in sb.keys() {
        if !sa.contains_key(key) {
            println!("series only in B: {}", key.0);
        }
    }
    if deltas.is_empty() {
        println!("per-window metrics: identical on every shared series/window");
    } else {
        deltas.sort_by(|x, y| y.differing.cmp(&x.differing).then(x.name.cmp(&y.name)));
        println!(
            "\nper-window metric deltas (top {} of {} differing series):",
            deltas.len().min(12),
            deltas.len()
        );
        println!(
            "{:>32} {:>10} {:>12} {:>12}",
            "series", "differing", "max-delta", "at-window"
        );
        for d in deltas.iter().take(12) {
            println!(
                "{:>32} {:>6}/{:<3} {:>11.2}% {:>12}",
                d.name, d.differing, d.shared, d.max_delta_pct, d.at_window
            );
        }
    }

    // 4. Phase-attribution shifts.
    println!("\nphase-attribution shifts (B vs A, percentage points):");
    let mut max_shift = (0.0f64, String::new());
    let phases_a = a["phases"]["phases"]
        .as_array()
        .cloned()
        .unwrap_or_default();
    for pa in &phases_a {
        let name = pa["phase"].as_str().unwrap_or("?");
        let share_a = num(&pa["share"]) * 100.0;
        let share_b = b["phases"]["phases"]
            .as_array()
            .and_then(|ps| {
                ps.iter()
                    .find(|p| p["phase"].as_str() == Some(name))
                    .map(|p| num(&p["share"]) * 100.0)
            })
            .unwrap_or(0.0);
        let shift = share_b - share_a;
        if shift.abs() > 0.05 {
            println!("{name:>12}: {share_a:>6.1}% -> {share_b:>6.1}% ({shift:>+6.1} pts)");
        }
        if shift.abs() > max_shift.0 {
            max_shift = (shift.abs(), name.to_owned());
        }
    }
    if max_shift.0 <= 0.05 {
        println!("  none above 0.1 pts");
    }

    // 5. SLO alert counts.
    let (aa, ab) = (alert_counts(&a), alert_counts(&b));
    if aa.is_empty() && ab.is_empty() {
        println!("\nSLO alerts: none on either side");
    } else {
        println!("\nSLO alerts per (objective, signal):");
        let keys: std::collections::BTreeSet<_> = aa.keys().chain(ab.keys()).collect();
        for k in keys {
            println!(
                "{:>16} {:>8}: {:>6} -> {:>6}",
                k.0,
                k.1,
                aa.get(k).copied().unwrap_or(0),
                ab.get(k).copied().unwrap_or(0)
            );
        }
    }

    // --check: thresholds as a CI gate.
    if args.check {
        if mean_delta_pct.abs() > args.max_mean_delta_pct {
            violations.push(format!(
                "mean response delta {mean_delta_pct:+.2}% exceeds ±{}%",
                args.max_mean_delta_pct
            ));
        }
        if requests_delta_pct.abs() > args.max_requests_delta_pct {
            violations.push(format!(
                "request count delta {requests_delta_pct:+.2}% exceeds ±{}%",
                args.max_requests_delta_pct
            ));
        }
        if max_shift.0 > args.max_phase_shift_pts {
            violations.push(format!(
                "phase `{}` share shifted {:.1} pts, exceeds {} pts",
                max_shift.1, max_shift.0, args.max_phase_shift_pts
            ));
        }
        if violations.is_empty() {
            println!(
                "\ncheck: within thresholds (mean ±{}%, requests ±{}%, phase shift {} pts){}",
                args.max_mean_delta_pct,
                args.max_requests_delta_pct,
                args.max_phase_shift_pts,
                if divergence.is_none() {
                    ", zero event-stream divergence"
                } else {
                    ""
                }
            );
        } else {
            eprintln!("\ncheck: {} violations:", violations.len());
            for v in &violations {
                eprintln!("  {v}");
            }
            std::process::exit(1);
        }
    }
}
