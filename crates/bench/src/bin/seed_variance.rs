//! Run-to-run variance of the headline metrics across workload seeds.
//!
//! The synthetic traces are stochastic; this study quantifies how much
//! the Fig. 10 numbers scatter across five independent seeds (src2_2 is
//! the interesting case: at a ~1 % duty cycle, a week holds only ~200 ON
//! bursts, so its weekly volume has visible variance). Reported per
//! scheme: mean ± population σ of energy and response time.

use rolo_bench::{expect_consistent, run_profile, write_results};
use rolo_core::{Scheme, SimConfig};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    trace: String,
    scheme: String,
    energy_mean_mj: f64,
    energy_sigma_mj: f64,
    resp_mean_ms: f64,
    resp_sigma_ms: f64,
    seeds: usize,
}

fn stats(values: &[f64]) -> (f64, f64) {
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}

fn main() {
    const SEEDS: [u64; 5] = [11, 23, 47, 83, 131];
    let seeds = SEEDS;
    let traces = ["src2_2", "proj_0"];
    let schemes = [Scheme::Raid10, Scheme::RoloP, Scheme::RoloE];
    let jobs: Vec<(String, Scheme, u64)> = traces
        .iter()
        .flat_map(|t| {
            schemes
                .iter()
                .flat_map(move |&s| SEEDS.iter().map(move |&x| (t.to_string(), s, x)))
        })
        .collect();
    let runs = rolo_bench::parallel_map(jobs, |(trace, scheme, seed)| {
        let profile = rolo_trace::profiles::by_name(&trace).expect("profile");
        let cfg = SimConfig::paper_default(scheme, 20);
        let r = run_profile(&cfg, &profile, seed);
        expect_consistent(&r, &format!("{trace} {scheme:?} seed {seed}"));
        (trace, scheme, r.total_energy_j, r.mean_response_ms())
    });

    let mut rows = Vec::new();
    println!(
        "run-to-run variance over {} seeds (one week, 40 disks)\n",
        seeds.len()
    );
    println!(
        "{:<8} {:<8} {:>18} {:>18}",
        "trace", "scheme", "energy (MJ)", "mean resp (ms)"
    );
    for trace in traces {
        for &scheme in &schemes {
            let e: Vec<f64> = runs
                .iter()
                .filter(|(t, s, _, _)| t == trace && *s == scheme)
                .map(|(_, _, e, _)| e / 1e6)
                .collect();
            let m: Vec<f64> = runs
                .iter()
                .filter(|(t, s, _, _)| t == trace && *s == scheme)
                .map(|(_, _, _, m)| *m)
                .collect();
            let (em, es) = stats(&e);
            let (mm, ms) = stats(&m);
            println!(
                "{:<8} {:<8} {:>11.2} ± {:<5.2} {:>11.2} ± {:<5.2}",
                trace,
                scheme.to_string(),
                em,
                es,
                mm,
                ms
            );
            rows.push(Row {
                trace: trace.to_owned(),
                scheme: scheme.to_string(),
                energy_mean_mj: em,
                energy_sigma_mj: es,
                resp_mean_ms: mm,
                resp_sigma_ms: ms,
                seeds: seeds.len(),
            });
        }
    }
    println!("\n(energy is tight for always-on schemes — it is dominated by idle");
    println!(" power — and scatters most for RoLo-E, whose destage cycles and");
    println!(" read-miss wake-ups follow the bursty arrival realisation)");
    write_results("seed_variance", &rows);
}
