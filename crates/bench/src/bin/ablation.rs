//! Ablation study of RoLo's design choices (not a paper figure —
//! DESIGN.md §4 calls these out as the load-bearing mechanisms).
//!
//! Three mechanisms are switched off or varied one at a time on RoLo-P
//! under the src2_2 workload:
//!
//! 1. **idle-slot detection** (`bg_idle_guard`): 0 ms (destage whenever
//!    the queue is momentarily empty) vs the 10 ms default vs 50 ms —
//!    quantifies how much "only free bandwidth" protection the guard
//!    buys in foreground response time;
//! 2. **seamless logger hand-over** (`eager_spinup`): off vs on — shows
//!    the cost of stalling writes behind a 10.9 s spin-up at rotation;
//! 3. **spatial destage bundling** (`destage_chunk`): 4 KB vs 64 KB vs
//!    512 KB — the §VI claim that bundling contiguous blocks matters.

use rolo_bench::{expect_consistent, run_profile, write_results};
use rolo_core::{Scheme, SimConfig};
use rolo_sim::Duration;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    variant: String,
    mean_response_ms: f64,
    p99_response_ms: f64,
    energy_j: f64,
    rotations: u64,
    destaged_gib: f64,
    deactivations: u64,
}

fn run(label: &str, mutate: impl FnOnce(&mut SimConfig)) -> Row {
    let mut cfg = SimConfig::paper_default(Scheme::RoloP, 20);
    mutate(&mut cfg);
    let profile = rolo_trace::profiles::src2_2();
    let r = run_profile(&cfg, &profile, 0xab1a);
    expect_consistent(&r, label);
    Row {
        variant: label.to_owned(),
        mean_response_ms: r.mean_response_ms(),
        p99_response_ms: r
            .responses
            .percentile(99.0)
            .map(|d| d.as_millis_f64())
            .unwrap_or(0.0),
        energy_j: r.total_energy_j,
        rotations: r.policy.rotations,
        destaged_gib: r.policy.destaged_bytes as f64 / (1u64 << 30) as f64,
        deactivations: r.policy.deactivations,
    }
}

type Variant = (&'static str, Box<dyn FnOnce(&mut SimConfig) + Send>);

fn main() {
    let variants: Vec<Variant> = vec![
        (
            "baseline (10ms guard, eager, 64K chunks)",
            Box::new(|_: &mut SimConfig| {}),
        ),
        (
            "no idle guard (0ms)",
            Box::new(|c: &mut SimConfig| {
                c.bg_idle_guard = Duration::ZERO;
            }),
        ),
        (
            "wide idle guard (50ms)",
            Box::new(|c: &mut SimConfig| {
                c.bg_idle_guard = Duration::from_millis(50);
            }),
        ),
        (
            "no eager spin-up",
            Box::new(|c: &mut SimConfig| {
                c.eager_spinup = false;
            }),
        ),
        (
            "tiny destage chunks (4K)",
            Box::new(|c: &mut SimConfig| {
                c.destage_chunk = 4 * 1024;
            }),
        ),
        (
            "large destage chunks (512K)",
            Box::new(|c: &mut SimConfig| {
                c.destage_chunk = 512 * 1024;
            }),
        ),
        (
            "two on-duty loggers",
            Box::new(|c: &mut SimConfig| {
                c.rolo_on_duty = 2;
            }),
        ),
        (
            "SSTF disk scheduling",
            Box::new(|c: &mut SimConfig| {
                c.scheduler = rolo_disk::SchedulerKind::Sstf;
            }),
        ),
    ];
    let rows: Vec<Row> = variants
        .into_iter()
        .map(|(label, f)| run(label, f))
        .collect();

    println!(
        "RoLo-P design ablations under src2_2 ({} h)",
        rolo_bench::week_secs() / 3600
    );
    println!(
        "{:<42} {:>10} {:>10} {:>11} {:>6} {:>9} {:>7}",
        "variant", "mean resp", "p99", "energy", "rots", "destaged", "deact"
    );
    for r in &rows {
        println!(
            "{:<42} {:>8.2}ms {:>8.1}ms {:>11} {:>6} {:>7.1}Gi {:>7}",
            r.variant,
            r.mean_response_ms,
            r.p99_response_ms,
            rolo_bench::mj(r.energy_j),
            r.rotations,
            r.destaged_gib,
            r.deactivations
        );
    }
    let base = rows[0].mean_response_ms;
    println!("\nresponse-time deltas vs baseline:");
    for r in rows.iter().skip(1) {
        println!(
            "  {:<42} {:+.1} %",
            r.variant,
            (r.mean_response_ms / base - 1.0) * 100.0
        );
    }
    write_results("ablation", &rows);
}
