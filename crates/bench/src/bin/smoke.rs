//! Quick feasibility smoke run: one scheme, one trace profile, printed
//! report. Not a paper experiment — a harness check.
//!
//! Usage: `smoke [scheme] [trace] [hours]` (defaults: RoLo-P, src2_2, 24).
//! Set `ROLO_E_SPINDOWN_SECS` to override RoLo-E's idle spin-down timeout.
//!
//! After the report the binary re-runs the same workload with the no-op
//! [`NullSink`] and with a [`RingSink`] — three runs each, taking the
//! minimum wall time per sink — and asserts the tracing overhead stays
//! within 10 % (+ scheduling slack) of the untraced run, the budget
//! DESIGN.md §9 promises.

use rolo_core::{run_scheme_with_sink, Scheme, SimConfig};
use rolo_obs::{NullSink, RingSink};
use rolo_sim::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scheme = match args.get(1).map(String::as_str) {
        Some("raid10") => Scheme::Raid10,
        Some("graid") => Scheme::Graid,
        Some("rolo-r") => Scheme::RoloR,
        Some("rolo-e") => Scheme::RoloE,
        _ => Scheme::RoloP,
    };
    let profile =
        rolo_trace::profiles::by_name(args.get(2).map(String::as_str).unwrap_or("src2_2"))
            .expect("unknown trace profile");
    let hours: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(24);

    let mut cfg = SimConfig::paper_default(scheme, 20);
    if let Ok(secs) = std::env::var("ROLO_E_SPINDOWN_SECS") {
        cfg.roloe_idle_spindown = Duration::from_secs(secs.parse().unwrap());
    }
    let dur = Duration::from_secs(hours * 3600);
    let start = std::time::Instant::now();
    let report = rolo_core::run_scheme(&cfg, profile.generator(dur, 1), dur);
    let wall = start.elapsed();

    println!("scheme          : {}", report.scheme);
    println!("trace           : {} for {hours} h", profile.name);
    println!("requests        : {}", report.user_requests);
    println!(
        "energy          : {}",
        rolo_bench::mj(report.total_energy_j)
    );
    println!("mean response   : {:.2} ms", report.mean_response_ms());
    println!("spin cycles     : {}", report.spin_cycles);
    println!("rotations       : {}", report.policy.rotations);
    println!("destage cycles  : {}", report.policy.destage_cycles);
    println!(
        "destaged        : {:.2} GiB",
        report.policy.destaged_bytes as f64 / (1u64 << 30) as f64
    );
    println!(
        "logged          : {:.2} GiB",
        report.policy.log_appended_bytes as f64 / (1u64 << 30) as f64
    );
    println!(
        "cache hit rate  : {:.2} %",
        report.policy.cache_hit_rate() * 100.0
    );
    println!("consistency     : {:?}", report.consistency);
    for p in [50.0, 90.0, 99.0] {
        println!(
            "  p{p:<5} write  : {:?}",
            report.write_responses.percentile(p)
        );
    }
    println!("drained at      : {}", report.drained_at);
    println!("wall clock      : {wall:.2?}");
    println!(
        "phases: logging {} spans / {:.1}h, destaging {} spans / {:.2}h (ratio {:.3})",
        report.logging_phase.spans,
        report.logging_phase.residency.as_secs_f64() / 3600.0,
        report.destaging_phase.spans,
        report.destaging_phase.residency.as_secs_f64() / 3600.0,
        report.destaging_interval_ratio,
    );
    let a = &report.aggregate_energy;
    println!(
        "disk-time: active {:.1}h idle {:.1}h standby {:.1}h spin-up {:.1}h spin-down {:.1}h",
        a.active.as_secs_f64() / 3600.0,
        a.idle.as_secs_f64() / 3600.0,
        a.standby.as_secs_f64() / 3600.0,
        a.spinning_up.as_secs_f64() / 3600.0,
        a.spinning_down.as_secs_f64() / 3600.0,
    );

    // Tracing-overhead check: identical workload with the hot path's
    // one dead branch (NullSink) vs a live ring buffer. Each variant is
    // timed as the minimum of three runs — one noisy scheduler quantum
    // must not fail (or pass) the budget on its own.
    let records: Vec<_> = profile.generator(dur, 1).collect();
    const OVERHEAD_RUNS: u32 = 3;
    let mut null_wall = std::time::Duration::MAX;
    let mut null_report = None;
    for _ in 0..OVERHEAD_RUNS {
        let start = std::time::Instant::now();
        let (r, _) = run_scheme_with_sink(&cfg, records.clone(), dur, Box::new(NullSink));
        null_wall = null_wall.min(start.elapsed());
        null_report = Some(r);
    }
    let null_report = null_report.expect("at least one run");
    let mut ring_wall = std::time::Duration::MAX;
    let mut ring_run = None;
    for _ in 0..OVERHEAD_RUNS {
        let start = std::time::Instant::now();
        let out =
            run_scheme_with_sink(&cfg, records.clone(), dur, Box::new(RingSink::new(1 << 20)));
        ring_wall = ring_wall.min(start.elapsed());
        ring_run = Some(out);
    }
    let (ring_report, sink) = ring_run.expect("at least one run");
    assert_eq!(
        null_report.deterministic_json(),
        ring_report.deterministic_json(),
        "tracing changed the simulation outcome"
    );
    println!(
        "tracing overhead (min of {OVERHEAD_RUNS}): null {null_wall:.2?} vs \
         ring {ring_wall:.2?} ({} events, {} dropped)",
        sink.recorded(),
        sink.dropped()
    );
    // 10 % budget plus absolute slack so sub-second runs are not judged
    // on scheduler noise.
    let budget = null_wall.mul_f64(1.10) + std::time::Duration::from_millis(250);
    assert!(
        ring_wall <= budget,
        "ring-buffer tracing too slow: {ring_wall:?} > budget {budget:?} (null {null_wall:?})"
    );
    println!("tracing overhead within budget ({budget:.2?})");
}
