//! Breach drill-down: runs one scheme with tail forensics on and
//! prints the root-cause attribution of every SLO alert window
//! (DESIGN.md §14) — the phase-ranked blame table built from the
//! window's tail exemplars, the culprit background activity named by
//! `delayed_by` causality, and the originating event kind.
//!
//! ```text
//! rca_report [scheme] [trace] [hours] [--pairs N] [--seed S]
//!            [--trace-seed S] [--exemplars K] [--check]
//!            [--expect-dominant PHASE] [--expect-clean]
//! ```
//!
//! Defaults reproduce the locked telemetry acceptance run: rolo-e on
//! hm_1 for 3 simulated hours, 10 pairs, seed 0x7e1e, trace seed 42 —
//! the configuration whose p95 spin-up tail the SLO monitor is known
//! to breach online.
//!
//! * `--check` — verify the report's conservation contract (blame
//!   shares partition the attributed tail time exactly) and exit
//!   non-zero on violation.
//! * `--expect-dominant PHASE` — additionally require a breach whose
//!   first breach window's dominant phase is `PHASE` (the CI gate for
//!   RoLo-E × hm_1: SpinUpStall).
//! * `--expect-clean` — additionally require that the run raised no
//!   SLO alert at all (the CI gate for RoLo-P × hm_1).
//!
//! The full typed `RcaReport` lands in
//! `results/rca_<scheme>_<trace>.json` (strict JSON, deterministic
//! for fixed inputs).

use rolo_core::{run_scheme_observed, Scheme, SimConfig};
use rolo_obs::{NullSink, RcaReport, SloSignal};
use rolo_sim::Duration;
use serde::Serialize;

struct Args {
    scheme: Scheme,
    scheme_arg: String,
    trace: String,
    hours: f64,
    pairs: usize,
    seed: u64,
    trace_seed: u64,
    exemplars: usize,
    check: bool,
    expect_dominant: Option<String>,
    expect_clean: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        scheme: Scheme::RoloE,
        scheme_arg: "rolo-e".to_owned(),
        trace: "hm_1".to_owned(),
        hours: 3.0,
        pairs: 10,
        seed: 0x7e1e,
        trace_seed: 42,
        exemplars: 8,
        check: false,
        expect_dominant: None,
        expect_clean: false,
    };
    let mut positional = 0;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--pairs" => args.pairs = val("--pairs").parse().expect("pairs"),
            "--seed" => args.seed = val("--seed").parse().expect("seed"),
            "--trace-seed" => args.trace_seed = val("--trace-seed").parse().expect("trace-seed"),
            "--exemplars" => args.exemplars = val("--exemplars").parse().expect("exemplars"),
            "--check" => args.check = true,
            "--expect-dominant" => args.expect_dominant = Some(val("--expect-dominant")),
            "--expect-clean" => args.expect_clean = true,
            "--help" | "-h" => {
                eprintln!("see the module docs at the top of rca_report.rs");
                std::process::exit(0);
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
            other => {
                match positional {
                    0 => {
                        args.scheme = match other {
                            "raid10" => Scheme::Raid10,
                            "graid" => Scheme::Graid,
                            "rolo-p" => Scheme::RoloP,
                            "rolo-r" => Scheme::RoloR,
                            "rolo-e" => Scheme::RoloE,
                            _ => {
                                eprintln!("unknown scheme {other}");
                                std::process::exit(2);
                            }
                        };
                        args.scheme_arg = other.to_owned();
                    }
                    1 => args.trace = other.to_owned(),
                    2 => args.hours = other.parse().expect("hours"),
                    _ => {
                        eprintln!("too many positional arguments");
                        std::process::exit(2);
                    }
                }
                positional += 1;
            }
        }
    }
    args
}

/// The strict-JSON document: run coordinates plus the typed report.
#[derive(Debug, Serialize)]
struct Export {
    scheme: String,
    trace: String,
    hours: f64,
    pairs: usize,
    seed: u64,
    trace_seed: u64,
    exemplars_per_window: usize,
    exemplar_windows: usize,
    exemplars_captured: usize,
    rca: RcaReport,
}

fn print_window(w: &rolo_obs::WindowRca) {
    let signal = match w.signal {
        SloSignal::Warning => "WARN",
        SloSignal::Breach => "BREACH",
    };
    println!(
        "window {:>4}  {:<12} {:<6} observed {:>12.0}  target {:>10.0}  burn {:>5.1}/{:<5.1}",
        w.window, w.slo, signal, w.observed, w.target, w.burn_short, w.burn_long
    );
    if w.exemplars == 0 {
        println!("  (no tail exemplars captured for this window)");
        return;
    }
    println!(
        "  {} exemplars, {:.1} ms tail time, {:.1}% attributed, dominant: {}",
        w.exemplars,
        w.total_us as f64 / 1e3,
        if w.total_us == 0 {
            100.0
        } else {
            w.attributed_us as f64 / w.total_us as f64 * 100.0
        },
        w.dominant_phase.unwrap_or("-"),
    );
    for b in &w.blame {
        println!(
            "    {:<20} {:>10.1} ms  {:>5.1}%",
            b.phase,
            b.us as f64 / 1e3,
            b.share * 100.0
        );
    }
    if let Some(c) = &w.culprit {
        println!(
            "  culprit: {} (origin event {}), disks {:?}, {} linked bg span(s)",
            c.activity,
            c.origin_event,
            c.disks,
            c.bg_spans.len()
        );
        if !c.power_states.is_empty() {
            let states: Vec<String> = c
                .power_states
                .iter()
                .map(|(d, s)| format!("{d}:{s:?}"))
                .collect();
            println!("  implicated power states: {}", states.join(" "));
        }
    }
}

fn main() {
    let args = parse_args();
    let mut cfg = SimConfig::paper_default(args.scheme, args.pairs);
    cfg.seed = args.seed;
    cfg.exemplars_per_window = args.exemplars;
    cfg.rca_enabled = true;
    cfg.validate();
    let profile = rolo_trace::profiles::by_name(&args.trace).unwrap_or_else(|| {
        eprintln!("unknown trace profile {}", args.trace);
        std::process::exit(2);
    });
    let dur = Duration::from_secs((args.hours * 3600.0) as u64);
    let records = profile.generator(dur, args.trace_seed).collect::<Vec<_>>();

    let (report, obs) = run_scheme_observed(&cfg, records, dur, Box::new(NullSink), true);
    rolo_bench::expect_consistent(&report, &report.scheme);
    let rca = obs.rca.expect("rca_enabled");
    let exemplars = obs.exemplars.expect("exemplar capture on");

    println!(
        "tail forensics: {} on {} for {} h ({} requests, {} exemplar windows, {} exemplars)",
        report.scheme,
        args.trace,
        args.hours,
        report.user_requests,
        exemplars.windows.len(),
        exemplars.total(),
    );
    if rca.is_clean() {
        println!("no SLO alerts raised — nothing to attribute");
    } else {
        println!(
            "{} warning window(s), {} breach window(s):",
            rca.warnings, rca.breaches
        );
        for w in &rca.windows {
            print_window(w);
        }
    }

    let export = Export {
        scheme: report.scheme.clone(),
        trace: args.trace.clone(),
        hours: args.hours,
        pairs: args.pairs,
        seed: args.seed,
        trace_seed: args.trace_seed,
        exemplars_per_window: args.exemplars,
        exemplar_windows: exemplars.windows.len(),
        exemplars_captured: exemplars.total(),
        rca: rca.clone(),
    };
    rolo_bench::write_results(&format!("rca_{}_{}", args.scheme_arg, args.trace), &export);

    let mut failures: Vec<String> = Vec::new();
    if args.check {
        if let Err(e) = rca.check() {
            failures.push(format!("conservation violated: {e}"));
        }
    }
    if let Some(phase) = &args.expect_dominant {
        match rca.first_breach() {
            None => failures.push("expected a breach window, none raised".to_owned()),
            Some(w) => {
                if w.dominant_phase != Some(phase.as_str()) {
                    failures.push(format!(
                        "first breach window {} dominated by {:?}, expected {phase}",
                        w.window, w.dominant_phase
                    ));
                }
            }
        }
    }
    if args.expect_clean && !rca.is_clean() {
        failures.push(format!(
            "expected a clean run, got {} warning(s) and {} breach(es)",
            rca.warnings, rca.breaches
        ));
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    if args.check || args.expect_dominant.is_some() || args.expect_clean {
        println!("rca checks passed");
    }
}
