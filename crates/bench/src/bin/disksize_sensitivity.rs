//! §V-C "Disk Sizes": energy-saving sensitivity to disk capacity at a
//! fixed 50 % free-space ratio.
//!
//! GRAID's log capacity is set to 16/8/4 GB with RoLo free space at
//! 8/4/2 GB correspondingly (and disk capacity scaled to keep the ratio),
//! mirroring the paper's setup. Reported in prose: *"the energy saving
//! effectiveness of RoLo over GRAID does not vary with the disk capacity
//! under the condition of unalterable disk I/O performance"*.

use rolo_bench::{expect_consistent, run_profile, write_results};
use rolo_core::{Scheme, SimConfig};
use serde::Serialize;

const GIB: u64 = 1 << 30;

#[derive(Debug, Serialize)]
struct Row {
    trace: String,
    scheme: String,
    rolo_free_gib: u64,
    energy_saved_over_graid: f64,
}

fn main() {
    let traces = ["src2_2", "proj_0"];
    // (GRAID log GiB, RoLo free GiB, disk capacity GiB at 50 % free).
    const SIZES: [(u64, u64, f64); 3] = [(16, 8, 16.0), (8, 4, 8.0), (4, 2, 4.0)];
    let sizes = SIZES;
    let schemes = [Scheme::Graid, Scheme::RoloP, Scheme::RoloR, Scheme::RoloE];
    let jobs: Vec<(String, Scheme, (u64, u64, f64))> = traces
        .iter()
        .flat_map(|t| {
            schemes
                .iter()
                .flat_map(move |&s| SIZES.iter().map(move |&z| (t.to_string(), s, z)))
        })
        .collect();
    let results = rolo_bench::parallel_map(jobs, |(trace, scheme, (glog, rfree, cap))| {
        let profile = rolo_trace::profiles::by_name(&trace).expect("profile");
        let mut cfg = SimConfig::paper_default(scheme, 20);
        cfg.disk = cfg.disk.with_capacity(cap);
        cfg.logger_region = rfree * GIB;
        cfg.graid_log_capacity = glog * GIB;
        let r = run_profile(&cfg, &profile, 0xd15c);
        expect_consistent(&r, &format!("disksize {trace} {scheme:?} {rfree}"));
        (trace, scheme, rfree, r)
    });

    let mut rows = Vec::new();
    for trace in traces {
        println!("\n=== {trace}: energy saved over GRAID at fixed 50 % free ratio ===");
        println!(
            "{:<8} {:>10} {:>10} {:>10}",
            "scheme", "8GB free", "4GB free", "2GB free"
        );
        for &scheme in &schemes[1..] {
            let mut line = format!("{:<8}", scheme.to_string());
            for &(_, rfree, _) in &sizes {
                let graid = &results
                    .iter()
                    .find(|(t, s, f, _)| t == trace && *s == Scheme::Graid && *f == rfree)
                    .unwrap()
                    .3;
                let (_, _, _, r) = results
                    .iter()
                    .find(|(t, s, f, _)| t == trace && *s == scheme && *f == rfree)
                    .unwrap();
                let saved = r.energy_saved_over(graid);
                line += &format!(" {:>9.1}%", saved * 100.0);
                rows.push(Row {
                    trace: trace.to_owned(),
                    scheme: scheme.to_string(),
                    rolo_free_gib: rfree,
                    energy_saved_over_graid: saved,
                });
            }
            println!("{line}");
        }
    }
    println!("\n(paper: the saving over GRAID is insensitive to disk capacity at a");
    println!(" fixed free-space ratio — it varies with disk *count* and free space)");
    write_results("disksize_sensitivity", &rows);
}
