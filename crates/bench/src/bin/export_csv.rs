//! Converts the harness's `results/*.json` files into flat CSV for
//! external plotting tools.
//!
//! ```text
//! export_csv [results_dir] [out_dir]
//! ```
//!
//! Each JSON file must be an array of flat objects (the shape every
//! experiment binary writes); nested values are serialised as JSON
//! strings. Output: one `<name>.csv` per input, with a header row of the
//! union of keys.

use serde_json::Value;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn flatten_rows(value: &Value) -> Option<Vec<&serde_json::Map<String, Value>>> {
    match value {
        Value::Array(items) => items.iter().map(|i| i.as_object()).collect(),
        // Some experiments write an object with a `cells` array.
        Value::Object(map) => map
            .get("cells")
            .and_then(|c| c.as_array())
            .map(|items| items.iter().filter_map(|i| i.as_object()).collect()),
        _ => None,
    }
}

fn csv_escape(v: &Value) -> String {
    let raw = match v {
        Value::String(s) => s.clone(),
        other => other.to_string(),
    };
    if raw.contains(',') || raw.contains('"') || raw.contains('\n') {
        format!("\"{}\"", raw.replace('"', "\"\""))
    } else {
        raw
    }
}

fn convert(path: &Path, out_dir: &Path) -> Result<PathBuf, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let value: Value = serde_json::from_str(&text).map_err(|e| e.to_string())?;
    let rows = flatten_rows(&value).ok_or("not an array of objects")?;
    if rows.is_empty() {
        return Err("empty result set".into());
    }
    let mut keys: BTreeSet<&str> = BTreeSet::new();
    for r in &rows {
        keys.extend(r.keys().map(String::as_str));
    }
    let mut out = String::new();
    out.push_str(&keys.iter().copied().collect::<Vec<_>>().join(","));
    out.push('\n');
    for r in &rows {
        let line: Vec<String> = keys
            .iter()
            .map(|k| r.get(k).map(csv_escape).unwrap_or_default())
            .collect();
        out.push_str(&line.join(","));
        out.push('\n');
    }
    let name = path.file_stem().and_then(|s| s.to_str()).unwrap_or("out");
    let dest = out_dir.join(format!("{name}.csv"));
    std::fs::write(&dest, out).map_err(|e| e.to_string())?;
    Ok(dest)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let results = PathBuf::from(args.get(1).map(String::as_str).unwrap_or("results"));
    let out_dir = PathBuf::from(args.get(2).map(String::as_str).unwrap_or("results/csv"));
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        std::process::exit(1);
    }
    let mut converted = 0;
    let entries = match std::fs::read_dir(&results) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("cannot read {}: {e}", results.display());
            std::process::exit(1);
        }
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        match convert(&path, &out_dir) {
            Ok(dest) => {
                println!("{} -> {}", path.display(), dest.display());
                converted += 1;
            }
            Err(e) => eprintln!("skipping {}: {e}", path.display()),
        }
    }
    println!("{converted} file(s) converted");
}
