//! §III-C recovery study (not a paper figure — the paper describes the
//! recovery paths qualitatively; this quantifies them).
//!
//! For a primary-disk failure on a 20-pair array, simulates the rebuild
//! under each scheme: which disks wake, how long the rebuild takes
//! (including spin-up latency), and the energy the recovery consumes.
//! The RoLo rows use a realistic set of recent on-duty loggers (three
//! unreclaimed periods, per the Fig. 5 rotation pattern).

use rolo_bench::write_results;
use rolo_core::{rebuild_primary_failure, Scheme, SimConfig};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    scheme: String,
    disks_awakened: usize,
    disks_involved: usize,
    rebuild_minutes: f64,
    energy_kj: f64,
}

fn main() {
    let schemes = [
        Scheme::Raid10,
        Scheme::Graid,
        Scheme::RoloP,
        Scheme::RoloR,
        Scheme::RoloE,
    ];
    let rows: Vec<Row> = rolo_bench::parallel_map(schemes.to_vec(), |scheme| {
        let cfg = SimConfig::paper_default(scheme, 20);
        let recent = match scheme {
            Scheme::RoloP | Scheme::RoloR => vec![4usize, 5, 6],
            _ => vec![],
        };
        let r = rebuild_primary_failure(&cfg, scheme, &recent);
        Row {
            scheme: r.scheme.clone(),
            disks_awakened: r.disks_awakened,
            disks_involved: r.disks_involved,
            rebuild_minutes: r.duration.as_secs_f64() / 60.0,
            energy_kj: r.energy_j / 1e3,
        }
    });

    println!("§III-C: rebuilding a failed primary on a 40-disk array\n");
    println!(
        "{:<8} {:>9} {:>9} {:>10} {:>10}",
        "scheme", "awakened", "involved", "rebuild", "energy"
    );
    for r in &rows {
        println!(
            "{:<8} {:>9} {:>9} {:>8.1}m {:>8.1}kJ",
            r.scheme, r.disks_awakened, r.disks_involved, r.rebuild_minutes, r.energy_kj
        );
    }
    println!("\n(the paper's §IV argument quantified: GRAID wakes every mirror to");
    println!(" recover a primary, RoLo-P/R wake only the pair's own mirror plus");
    println!(" the recent on-duty loggers, and RAID10 wakes nothing)");
    write_results("recovery_study", &rows);
}
