//! §VII future-work study: RoLo on parity-based storage.
//!
//! Sweeps write intensity over a 20-disk RAID5 array, comparing in-place
//! read-modify-write (RAID5) against rotated parity-delta logging
//! (RoLo-5) with one, two and four on-duty loggers. Reports mean/p99
//! write response, aggregate ACTIVE disk time (the media-efficiency
//! measure), rotations and deactivations.
//!
//! Finding this study is designed to surface: rotated logging *does* cut
//! total media time (three I/Os, one semi-sequential, versus RAID5's
//! four — two of which pay a missed-revolution rewrite), but on RAID5
//! every disk also carries data, so log appends keep losing
//! sequentiality and the latency benefit of RoLo's dedicated-logger
//! designs does not transfer: a feasibility "yes, but" — the efficiency
//! is real, the performance needs NVRAM append batching or dedicated log
//! devices (as in classic Parity Logging).

use rolo_bench::{expect_consistent, write_results};
use rolo_core::{run_trace, Scheme, SimConfig, SimReport};
use rolo_parity::{Raid5Geometry, Raid5Policy, Rolo5Policy};
use rolo_sim::Duration;
use rolo_trace::{Burstiness, SizeDist, SyntheticConfig};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    scheme: String,
    iops: f64,
    mean_write_ms: f64,
    p99_write_ms: f64,
    active_disk_hours: f64,
    rotations: u64,
    deactivations: u64,
}

fn base_cfg() -> SimConfig {
    let mut cfg = SimConfig::paper_default(Scheme::Raid10, 10); // 20 disks
    cfg.logger_region = 1 << 30;
    cfg
}

fn workload(iops: f64) -> SyntheticConfig {
    SyntheticConfig {
        iops,
        write_ratio: 1.0,
        read_size: SizeDist::Fixed(16 * 1024),
        write_size: SizeDist::Fixed(16 * 1024),
        sequential_fraction: 0.3,
        write_footprint: 16 << 30,
        read_footprint: 16 << 30,
        read_hot_fraction: 0.5,
        hot_set_bytes: 16 << 20,
        burstiness: Burstiness::Smooth,
        batch_mean: 1.0,
        align: 4096,
    }
}

fn summarize(scheme: &str, iops: f64, r: &SimReport) -> Row {
    Row {
        scheme: scheme.to_owned(),
        iops,
        mean_write_ms: r.write_responses.mean_ms(),
        p99_write_ms: r
            .write_responses
            .percentile(99.0)
            .map(|d| d.as_millis_f64())
            .unwrap_or(0.0),
        active_disk_hours: r.aggregate_energy.active.as_secs_f64() / 3600.0,
        rotations: r.policy.rotations,
        deactivations: r.policy.deactivations,
    }
}

fn main() {
    let dur = Duration::from_secs(1200);
    let loads = vec![100.0, 200.0, 400.0];
    let rows: Vec<Vec<Row>> = rolo_bench::parallel_map(loads.clone(), |iops| {
        let cfg = base_cfg();
        let geo = Raid5Geometry::new(cfg.disk_count(), cfg.stripe_unit, cfg.data_region());
        let wl = workload(iops);
        let mut out = Vec::new();
        let raid5 = run_trace(
            &cfg,
            wl.generator(dur, 55),
            Raid5Policy::new(geo.clone()),
            dur,
        );
        expect_consistent(&raid5, "raid5");
        out.push(summarize("RAID5", iops, &raid5));
        for k in [1usize, 2, 4] {
            let p = Rolo5Policy::with_loggers(
                geo.clone(),
                cfg.data_region(),
                cfg.logger_region,
                0.02,
                cfg.destage_chunk,
                k,
            );
            let r = run_trace(&cfg, wl.generator(dur, 55), p, dur);
            expect_consistent(&r, &format!("rolo5-k{k}"));
            out.push(summarize(&format!("RoLo-5 (K={k})"), iops, &r));
        }
        // The NVRAM-staged variant (classic Parity Logging's FT buffer).
        let mut p = Rolo5Policy::with_loggers(
            geo.clone(),
            cfg.data_region(),
            cfg.logger_region,
            0.02,
            cfg.destage_chunk,
            2,
        );
        p.enable_nvram(1 << 20);
        let r = run_trace(&cfg, wl.generator(dur, 55), p, dur);
        expect_consistent(&r, "rolo5-nvram");
        out.push(summarize("RoLo-5+NVRAM", iops, &r));
        out
    });
    let rows: Vec<Row> = rows.into_iter().flatten().collect();

    println!(
        "§VII study: parity-based RoLo on a 20-disk RAID5 array (20 min, 100 % writes, 16 KB)\n"
    );
    println!(
        "{:<14} {:>6} {:>12} {:>11} {:>12} {:>6} {:>6}",
        "scheme", "iops", "mean write", "p99", "disk-active", "rots", "deact"
    );
    for r in &rows {
        println!(
            "{:<14} {:>6} {:>10.2}ms {:>9.1}ms {:>11.2}h {:>6} {:>6}",
            r.scheme,
            r.iops,
            r.mean_write_ms,
            r.p99_write_ms,
            r.active_disk_hours,
            r.rotations,
            r.deactivations
        );
    }

    println!("\nfindings:");
    for &iops in &loads {
        let raid5 = rows
            .iter()
            .find(|r| r.scheme == "RAID5" && r.iops == iops)
            .unwrap();
        let best = rows
            .iter()
            .filter(|r| r.scheme != "RAID5" && !r.scheme.contains("NVRAM") && r.iops == iops)
            .min_by(|a, b| a.mean_write_ms.total_cmp(&b.mean_write_ms))
            .unwrap();
        println!(
            "  {iops} IOPS: media-time saving {:+.1} % ({} vs RAID5); latency {:+.1} %",
            (1.0 - best.active_disk_hours / raid5.active_disk_hours) * 100.0,
            best.scheme,
            (best.mean_write_ms / raid5.mean_write_ms - 1.0) * 100.0,
        );
    }
    println!("\nwith NVRAM append staging (Parity Logging's fix):");
    for &iops in &loads {
        let raid5 = rows
            .iter()
            .find(|r| r.scheme == "RAID5" && r.iops == iops)
            .unwrap();
        let nv = rows
            .iter()
            .find(|r| r.scheme == "RoLo-5+NVRAM" && r.iops == iops)
            .unwrap();
        println!(
            "  {iops} IOPS: latency {:+.1} %, media-time {:+.1} % vs RAID5",
            (nv.mean_write_ms / raid5.mean_write_ms - 1.0) * 100.0,
            (1.0 - nv.active_disk_hours / raid5.active_disk_hours) * 100.0,
        );
    }
    println!("\n(rotated logging transplants to RAID5 with real media-time savings, but");
    println!(" since every disk also serves data, appends lose sequentiality and the");
    println!(" latency advantage of RoLo's dedicated loggers does not carry over");
    println!(" without NVRAM append staging — with it, RoLo-5 wins on both axes)");
    write_results("parity_study", &rows);
}
