//! Figure 11: energy saved over RAID10 as a function of array size
//! (20/30/40 disks) under src2_2 and proj_0.
//!
//! The paper's findings to reproduce: savings *increase* with the number
//! of disks for every logging scheme, and the increase is larger for the
//! RoLo family than for GRAID.

use rolo_bench::{expect_consistent, run_profile, write_results};
use rolo_core::{Scheme, SimConfig};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    trace: String,
    scheme: String,
    disks: usize,
    energy_saved_over_raid10: f64,
}

fn main() {
    let traces = ["src2_2", "proj_0"];
    const SIZES: [usize; 3] = [10, 15, 20];
    let sizes = SIZES; // pairs → 20/30/40 disks
    let jobs: Vec<(String, Scheme, usize)> = traces
        .iter()
        .flat_map(|t| {
            Scheme::all()
                .into_iter()
                .flat_map(move |s| SIZES.iter().map(move |&p| (t.to_string(), s, p)))
        })
        .collect();
    let results = rolo_bench::parallel_map(jobs, |(trace, scheme, pairs)| {
        let profile = rolo_trace::profiles::by_name(&trace).expect("profile");
        let cfg = SimConfig::paper_default(scheme, pairs);
        let r = run_profile(&cfg, &profile, 0xf11);
        expect_consistent(&r, &format!("fig11 {trace} {scheme:?} {pairs}"));
        (trace, scheme, pairs, r)
    });

    let mut rows = Vec::new();
    for trace in traces {
        println!("\n=== {trace}: energy saved over RAID10 ===");
        println!("{:<8} {:>8} {:>8} {:>8}", "scheme", "20", "30", "40");
        for scheme in Scheme::all().into_iter().skip(1) {
            let mut line = format!("{scheme:<8}");
            for &pairs in &sizes {
                let raid10 = &results
                    .iter()
                    .find(|(t, s, p, _)| t == trace && *s == Scheme::Raid10 && *p == pairs)
                    .expect("baseline present")
                    .3;
                let r = &results
                    .iter()
                    .find(|(t, s, p, _)| t == trace && *s == scheme && *p == pairs)
                    .expect("run present")
                    .3;
                let saved = r.energy_saved_over(raid10);
                line += &format!(" {:>7.1}%", saved * 100.0);
                rows.push(Row {
                    trace: trace.to_owned(),
                    scheme: scheme.to_string(),
                    disks: pairs * 2,
                    energy_saved_over_raid10: saved,
                });
            }
            println!("{line}");
        }
    }
    println!("\n(paper: savings grow with array size; e.g. +2.4 pp for RoLo-P/R and");
    println!(" +7.8 pp for RoLo-E from 20→40 disks under src2_2, more under proj_0,");
    println!(" and the growth is larger for RoLo than for GRAID)");
    write_results("fig11", &rows);
}
