//! General-purpose simulation runner.
//!
//! ```text
//! simulate [--scheme raid10|graid|rolo-p|rolo-r|rolo-e]
//!          [--trace src2_2|proj_0|mds_0|wdev_0|web_1|rsrch_2|hm_1]
//!          [--msr <file.csv>]           # replay a real MSR trace instead
//!          [--pairs N] [--hours H] [--stripe-kib K] [--free-gib G]
//!          [--seed S] [--json <out.json>]
//! ```
//!
//! Prints the full report; optionally writes it as JSON.

use rolo_core::{Scheme, SimConfig, SimReport};
use rolo_sim::{Duration, SimTime};
use std::io::BufReader;

struct Args {
    scheme: Scheme,
    trace: String,
    msr: Option<String>,
    pairs: usize,
    hours: f64,
    stripe_kib: u64,
    free_gib: f64,
    seed: u64,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        scheme: Scheme::RoloP,
        trace: "src2_2".to_owned(),
        msr: None,
        pairs: 20,
        hours: 24.0,
        stripe_kib: 64,
        free_gib: 8.0,
        seed: 1,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--scheme" => {
                args.scheme = match val("--scheme").as_str() {
                    "raid10" => Scheme::Raid10,
                    "graid" => Scheme::Graid,
                    "rolo-p" => Scheme::RoloP,
                    "rolo-r" => Scheme::RoloR,
                    "rolo-e" => Scheme::RoloE,
                    other => {
                        eprintln!("unknown scheme {other}");
                        std::process::exit(2);
                    }
                }
            }
            "--trace" => args.trace = val("--trace"),
            "--msr" => args.msr = Some(val("--msr")),
            "--pairs" => args.pairs = val("--pairs").parse().expect("pairs"),
            "--hours" => args.hours = val("--hours").parse().expect("hours"),
            "--stripe-kib" => args.stripe_kib = val("--stripe-kib").parse().expect("stripe"),
            "--free-gib" => args.free_gib = val("--free-gib").parse().expect("free"),
            "--seed" => args.seed = val("--seed").parse().expect("seed"),
            "--json" => args.json = Some(val("--json")),
            "--help" | "-h" => {
                eprintln!("see the module docs at the top of simulate.rs");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn print_report(report: &SimReport) {
    println!("scheme            : {}", report.scheme);
    println!("window            : {}", report.trace_duration);
    println!("requests          : {}", report.user_requests);
    println!(
        "   reads / writes : {} / {}",
        report.read_responses.count(),
        report.write_responses.count()
    );
    println!("mean response     : {:.3} ms", report.mean_response_ms());
    for p in [50.0, 95.0, 99.0] {
        if let Some(v) = report.responses.percentile(p) {
            println!("   p{p:<4}          : {:.3} ms", v.as_millis_f64());
        }
    }
    println!("energy            : {:.3} MJ", report.total_energy_j / 1e6);
    let a = &report.aggregate_energy;
    println!(
        "   disk-time      : active {:.2}h idle {:.2}h standby {:.2}h",
        a.active.as_secs_f64() / 3600.0,
        a.idle.as_secs_f64() / 3600.0,
        a.standby.as_secs_f64() / 3600.0
    );
    println!("spin cycles       : {}", report.spin_cycles);
    println!("rotations         : {}", report.policy.rotations);
    println!("destage cycles    : {}", report.policy.destage_cycles);
    println!(
        "logged / destaged : {:.2} / {:.2} GiB",
        report.policy.log_appended_bytes as f64 / (1u64 << 30) as f64,
        report.policy.destaged_bytes as f64 / (1u64 << 30) as f64
    );
    if report.policy.cache_hits + report.policy.cache_misses > 0 {
        println!(
            "cache hit rate    : {:.2} % ({} misses, {} miss spin-ups)",
            report.policy.cache_hit_rate() * 100.0,
            report.policy.cache_misses,
            report.policy.read_miss_spinups
        );
    }
    println!(
        "destage ratio     : {:.4} (interval) / {:.4} (energy)",
        report.destaging_interval_ratio, report.destaging_energy_ratio
    );
    println!("consistency       : {:?}", report.consistency);
}

fn main() {
    let args = parse_args();
    let mut cfg = SimConfig::paper_default(args.scheme, args.pairs);
    cfg.stripe_unit = args.stripe_kib * 1024;
    cfg.logger_region = (args.free_gib * f64::from(1 << 30)) as u64;
    cfg.seed = args.seed;

    let report = if let Some(path) = &args.msr {
        let capacity = cfg.geometry().expect("geometry").logical_capacity();
        let file = std::fs::File::open(path).unwrap_or_else(|e| {
            eprintln!("cannot open {path}: {e}");
            std::process::exit(1);
        });
        let records = rolo_trace::parse_msr_csv(BufReader::new(file), Some(capacity))
            .unwrap_or_else(|e| {
                eprintln!("cannot parse {path}: {e}");
                std::process::exit(1);
            });
        let duration = records
            .last()
            .map(|r| r.arrival.since(SimTime::ZERO) + Duration::from_secs(1))
            .unwrap_or(Duration::from_secs(1));
        rolo_core::run_scheme(&cfg, records, duration)
    } else {
        let profile = rolo_trace::profiles::by_name(&args.trace).unwrap_or_else(|| {
            eprintln!("unknown trace profile {}", args.trace);
            std::process::exit(2);
        });
        let duration = Duration::from_secs_f64(args.hours * 3600.0);
        rolo_core::run_scheme(&cfg, profile.generator(duration, args.seed), duration)
    };

    print_report(&report);
    if let Some(path) = &args.json {
        let json = serde_json::to_string_pretty(&report).expect("serializable");
        std::fs::write(path, json).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("\nreport written to {path}");
    }
}
