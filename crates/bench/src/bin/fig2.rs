//! Figure 2: the motivation study of centralized logging (§II).
//!
//! A RAID10 array of 10 mirrored pairs plus one dedicated log disk runs
//! the conventional centralized logging architecture (GRAID) under a
//! 100 %-write, 70 %-random, 64 KB workload at several intensities, with
//! logger capacities of 8/12/16 GB.
//!
//! * (a)/(b): logging-capacity timeline and per-phase durations/energy
//!   for a sample configuration;
//! * (c): destaging interval ratio vs logger capacity;
//! * (d): destaging energy ratio vs logger capacity.
//!
//! The paper's observation to reproduce: **increasing the logging space
//! does not decrease either ratio** — both periods stretch
//! proportionally.

use rolo_bench::{expect_consistent, mj, write_results};
use rolo_core::{Scheme, SimConfig};
use rolo_sim::Duration;
use rolo_trace::SyntheticConfig;
use serde::Serialize;

const GIB: u64 = 1 << 30;

#[derive(Debug, Serialize)]
struct Cell {
    iops: f64,
    logger_gib: u64,
    destaging_interval_ratio: f64,
    destaging_energy_ratio: f64,
    mean_logging_mins: f64,
    mean_destaging_mins: f64,
    logging_energy_j: f64,
    destaging_energy_j: f64,
    cycles: u64,
}

#[derive(Debug, Serialize)]
struct Output {
    cells: Vec<Cell>,
    /// (seconds, occupied GiB) for the sample configuration (Fig. 2a).
    timeline: Vec<(f64, f64)>,
    /// (seconds, watts) aggregate power draw for the same configuration —
    /// the energy-over-time view behind Fig. 2(b).
    power: Vec<(f64, f64)>,
}

/// (time, value) series as exported in the results JSON.
type Series = Vec<(f64, f64)>;

fn run_cell(iops: f64, logger_gib: u64) -> (Cell, Series, Series) {
    let mut cfg = SimConfig::paper_default(Scheme::Graid, 10);
    cfg.graid_log_capacity = logger_gib * GIB;
    let wl = SyntheticConfig::motivation_write_only(iops);
    // Long enough for ~4 logging cycles at this fill rate.
    let cycle_secs = (0.8 * (logger_gib * GIB) as f64) / (iops * 64.0 * 1024.0);
    let duration = Duration::from_secs_f64((cycle_secs * 4.0).max(2.0 * 3600.0));
    let report = rolo_core::run_scheme(&cfg, wl.generator(duration, 2024), duration);
    expect_consistent(&report, "fig2");
    let cell = Cell {
        iops,
        logger_gib,
        destaging_interval_ratio: report.destaging_interval_ratio,
        destaging_energy_ratio: report.destaging_energy_ratio,
        mean_logging_mins: report.logging_phase.residency.as_secs_f64()
            / report.logging_phase.spans.max(1) as f64
            / 60.0,
        mean_destaging_mins: report.destaging_phase.residency.as_secs_f64()
            / report.destaging_phase.spans.max(1) as f64
            / 60.0,
        logging_energy_j: report.logging_phase.energy_j,
        destaging_energy_j: report.destaging_phase.energy_j,
        cycles: report.policy.destage_cycles,
    };
    let timeline = report
        .log_capacity_timeline
        .iter()
        .map(|(t, b)| (*t, b / GIB as f64))
        .collect();
    (cell, timeline, report.power_timeline.clone())
}

fn main() {
    const IOPS_LEVELS: [f64; 4] = [10.0, 50.0, 100.0, 200.0];
    const CAPACITIES: [u64; 3] = [8, 12, 16];
    let iops_levels = IOPS_LEVELS;
    let jobs: Vec<(f64, u64)> = IOPS_LEVELS
        .iter()
        .flat_map(|&i| CAPACITIES.iter().map(move |&c| (i, c)))
        .collect();
    let results = rolo_bench::parallel_map(jobs, |(i, c)| run_cell(i, c));
    let results: Vec<(Cell, Series, Series)> = results;

    println!("Figure 2(c): destaging interval ratio");
    println!("{:>6} {:>8} {:>8} {:>8}", "iops", "8GB", "12GB", "16GB");
    for &i in &iops_levels {
        let row: Vec<f64> = results
            .iter()
            .filter(|(c, _, _)| c.iops == i)
            .map(|(c, _, _)| c.destaging_interval_ratio)
            .collect();
        println!("{:>6} {:>8.3} {:>8.3} {:>8.3}", i, row[0], row[1], row[2]);
    }
    println!("\nFigure 2(d): destaging energy ratio");
    println!("{:>6} {:>8} {:>8} {:>8}", "iops", "8GB", "12GB", "16GB");
    for &i in &iops_levels {
        let row: Vec<f64> = results
            .iter()
            .filter(|(c, _, _)| c.iops == i)
            .map(|(c, _, _)| c.destaging_energy_ratio)
            .collect();
        println!("{:>6} {:>8.3} {:>8.3} {:>8.3}", i, row[0], row[1], row[2]);
    }

    println!("\nFigure 2(a)/(b): per-cycle phase lengths and energy");
    println!(
        "{:>6} {:>6} {:>12} {:>12} {:>12} {:>12} {:>7}",
        "iops", "GB", "logging", "destaging", "log energy", "dest energy", "cycles"
    );
    for (c, _, _) in &results {
        println!(
            "{:>6} {:>6} {:>10.1}m {:>10.1}m {:>12} {:>12} {:>7}",
            c.iops,
            c.logger_gib,
            c.mean_logging_mins,
            c.mean_destaging_mins,
            mj(c.logging_energy_j),
            mj(c.destaging_energy_j),
            c.cycles
        );
    }

    // The paper's observation: ratios do not fall as capacity grows.
    for &i in &iops_levels {
        let cells: Vec<&Cell> = results
            .iter()
            .filter(|(c, _, _)| c.iops == i)
            .map(|(c, _, _)| c)
            .collect();
        let small = cells[0].destaging_interval_ratio;
        let large = cells[2].destaging_interval_ratio;
        if small > 0.0 {
            println!(
                "iops {i}: interval ratio 8GB→16GB changes by {:+.1} % (paper: ~flat)",
                (large / small - 1.0) * 100.0
            );
        }
    }

    let sample = results
        .iter()
        .find(|(c, _, _)| c.iops == 100.0 && c.logger_gib == 16)
        .map(|(_, t, p)| (t.clone(), p.clone()))
        .unwrap_or_default();
    write_results(
        "fig2",
        &Output {
            cells: results.into_iter().map(|(c, _, _)| c).collect(),
            timeline: sample.0,
            power: sample.1,
        },
    );
}
