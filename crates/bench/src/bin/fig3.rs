//! Figure 3: proportion of IDLE time versus ACTIVE/STANDBY time, for the
//! primary disks and the log disk of the centralized logging
//! architecture, under I/O intensities of 10/50/100/200 IOPS.
//!
//! The paper's point: even under load, disks spend most of their time in
//! *short* idle slots (well below the spin-down break-even), which is the
//! free resource RoLo's decentralized destaging exploits.

use rolo_bench::{expect_consistent, write_results};
use rolo_core::{Scheme, SimConfig};
use rolo_disk::DiskParams;
use rolo_sim::Duration;
use rolo_trace::SyntheticConfig;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    iops: f64,
    primary_idle_fraction: f64,
    primary_active_standby_fraction: f64,
    log_idle_fraction: f64,
    log_active_standby_fraction: f64,
}

fn main() {
    let iops_levels = vec![10.0, 50.0, 100.0, 200.0];
    let rows = rolo_bench::parallel_map(iops_levels, |iops| {
        let cfg = SimConfig::paper_default(Scheme::Graid, 10);
        let wl = SyntheticConfig::motivation_write_only(iops);
        let duration = Duration::from_secs(4 * 3600);
        let report = rolo_core::run_scheme(&cfg, wl.generator(duration, 33), duration);
        expect_consistent(&report, "fig3");
        let frac = |r: &rolo_disk::DiskEnergyReport| {
            let total = r.total_time().as_secs_f64();
            let idle = r.idle.as_secs_f64() / total;
            let act_stby = (r.active.as_secs_f64() + r.standby.as_secs_f64()) / total;
            (idle, act_stby)
        };
        // Primaries are disks 0..10; the log disk is the last.
        let mut p_idle = 0.0;
        let mut p_as = 0.0;
        for d in 0..10 {
            let (i, a) = frac(&report.energy_by_disk[d]);
            p_idle += i / 10.0;
            p_as += a / 10.0;
        }
        let (l_idle, l_as) = frac(report.energy_by_disk.last().expect("log disk"));
        Row {
            iops,
            primary_idle_fraction: p_idle,
            primary_active_standby_fraction: p_as,
            log_idle_fraction: l_idle,
            log_active_standby_fraction: l_as,
        }
    });

    println!("Figure 3: IDLE vs ACTIVE/STANDBY time proportions under centralized logging");
    println!(
        "{:>6} | {:>12} {:>15} | {:>12} {:>15}",
        "iops", "prim IDLE", "prim ACT+STBY", "log IDLE", "log ACT+STBY"
    );
    for r in &rows {
        println!(
            "{:>6} | {:>12.3} {:>15.3} | {:>12.3} {:>15.3}",
            r.iops,
            r.primary_idle_fraction,
            r.primary_active_standby_fraction,
            r.log_idle_fraction,
            r.log_active_standby_fraction
        );
    }
    let be = DiskParams::ultrastar_36z15().break_even_time();
    println!(
        "\n(spin-down break-even for this disk: {be} — idle slots between\n 64 KB requests at these intensities are far shorter, so idling\n disks cannot profitably spin down: the paper's §II argument)"
    );
    write_results("fig3", &rows);
}
