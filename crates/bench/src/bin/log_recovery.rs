//! Crash-consistency smoke matrix for recovery-by-replay (DESIGN.md
//! §10): for every scheme with a segment journal, kill each
//! journal-bearing disk at each crash point of a write-heavy window
//! and require that
//!
//! * the replay pass ran (`policy.log_replays ≥ 1`),
//! * it reconstructed every covered pair's dirty map byte-identically
//!   to the controller's NVRAM state (`policy.replay_divergence == 0`),
//! * the end-of-run consistency audit (which folds the segment-store
//!   invariants in) passes, and
//! * span attribution stays ≥ 95 % with the `Compaction` phase in the
//!   taxonomy — the crash must not open attribution holes.
//!
//! ```text
//! log_recovery [--pairs N] [--secs S] [--iops R]
//! ```
//!
//! Defaults: 4 pairs, a 400 s window, 40 IOPS of the §II write-only
//! synthetic load, crashes at 90 s and 240 s. Exits non-zero on any
//! divergence, missing replay, consistency failure or attribution
//! below the bar — the CI guard for the §10 replay path.

use rolo_bench::{expect_consistent, parallel_map};
use rolo_core::{FaultPlan, Scheme, SimConfig};
use rolo_obs::SpanAnalysis;
use rolo_sim::Duration;
use rolo_trace::SyntheticConfig;

/// Same coverage bar as `span_report`.
const MIN_ATTRIBUTED: f64 = 0.95;

/// Crash instants swept for every (scheme, disk) cell: one early (the
/// first logging periods, chains still short) and one late (sealed
/// segments, archival and — for RoLo-P/R — compaction have all run).
const CRASH_SECS: [u64; 2] = [90, 240];

/// The journal-bearing disks of a scheme (DESIGN.md §10 topology).
fn journal_disks(scheme: Scheme, pairs: usize) -> Vec<usize> {
    match scheme {
        // RoLo-P journals its mirrors (the on-duty logger slots).
        Scheme::RoloP => (pairs..2 * pairs).collect(),
        // RoLo-R and RoLo-E journal every mirrored disk.
        Scheme::RoloR | Scheme::RoloE => (0..2 * pairs).collect(),
        // GRAID's sole journal is the dedicated log disk.
        Scheme::Graid => vec![2 * pairs],
        Scheme::Raid10 => Vec::new(),
    }
}

fn main() {
    let mut pairs = 4usize;
    let mut secs = 400u64;
    let mut iops = 40.0f64;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--pairs" => pairs = val("--pairs").parse().expect("pairs"),
            "--secs" => secs = val("--secs").parse().expect("secs"),
            "--iops" => iops = val("--iops").parse().expect("iops"),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let schemes = [Scheme::RoloP, Scheme::RoloR, Scheme::RoloE, Scheme::Graid];
    let mut jobs = Vec::new();
    for scheme in schemes {
        for disk in journal_disks(scheme, pairs) {
            for at in CRASH_SECS {
                jobs.push((scheme, disk, at));
            }
        }
    }
    let cells = jobs.len();
    println!(
        "log_recovery: {cells} crash cells ({} schemes, {pairs} pairs, \
         crashes at {CRASH_SECS:?} s of a {secs} s window)",
        schemes.len()
    );

    let runs = parallel_map(jobs.clone(), move |(scheme, disk, at)| {
        let mut cfg = SimConfig::paper_default(scheme, pairs);
        // Small disks keep the write-only load hot against the logs.
        cfg.disk.capacity_bytes = 256 << 20;
        cfg.logger_region = 32 << 20;
        cfg.graid_log_capacity = 64 << 20;
        cfg.faults = FaultPlan::single(disk, Duration::from_secs(at));
        let dur = Duration::from_secs(secs);
        let wl = SyntheticConfig::motivation_write_only(iops);
        rolo_core::run_scheme_spanned(&cfg, wl.generator(dur, cfg.seed), dur)
    });

    println!(
        "{:<8} {:>5} {:>8} {:>9} {:>6} {:>11} {:>8} {:>8}",
        "scheme", "disk", "crash", "replays", "torn", "divergence", "seals", "attrib"
    );
    let mut failures = Vec::new();
    for ((scheme, disk, at), (report, spans)) in jobs.iter().zip(&runs) {
        let label = format!("{scheme} disk {disk} @ {at}s");
        expect_consistent(report, &label);
        let metric = |name: &str| report.metrics.get(name).map(|m| m.value).unwrap_or(0.0);
        let replays = metric("policy.log_replays");
        let divergence = metric("policy.replay_divergence");
        let analysis = SpanAnalysis::analyze(&spans.requests);
        let attributed = analysis.all.attributed_fraction();
        println!(
            "{:<8} {:>5} {:>7}s {:>9} {:>6} {:>11} {:>8} {:>7.1}%",
            report.scheme,
            disk,
            at,
            replays,
            metric("policy.torn_records"),
            divergence,
            metric("policy.segments_sealed"),
            attributed * 100.0
        );
        if report.faults.disk_failures != 1 {
            failures.push(format!("{label}: fault never fired"));
        }
        if replays < 1.0 {
            failures.push(format!("{label}: no replay pass ran"));
        }
        if divergence != 0.0 {
            failures.push(format!(
                "{label}: replayed dirty maps diverged ({divergence} pairs)"
            ));
        }
        if attributed < MIN_ATTRIBUTED {
            failures.push(format!(
                "{label}: only {:.2}% of response attributed",
                attributed * 100.0
            ));
        }
    }

    if failures.is_empty() {
        println!("log_recovery: all {cells} cells replayed exactly, attribution ≥ 95%");
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
