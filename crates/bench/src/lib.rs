//! Experiment harness shared by the figure/table binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §4 for the index). They all follow the same
//! shape: build configs, run the simulator (in parallel across a sweep),
//! print the same rows/series the paper reports, and write
//! `results/<name>.json` for EXPERIMENTS.md.

use rolo_core::{SimConfig, SimReport};
use rolo_sim::Duration;
use rolo_trace::{TraceProfile, TraceRecord};
use serde::Serialize;
use std::path::PathBuf;

/// Seconds in the simulated "week" used by trace-driven experiments.
///
/// The MSR traces cover one week; the profiles' long-run rates are
/// calibrated per week, so experiments default to simulating the full
/// window. Override with the `ROLO_WEEK_SECS` environment variable to
/// trade fidelity for speed (e.g. CI smoke runs).
pub fn week_secs() -> u64 {
    std::env::var("ROLO_WEEK_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7 * 24 * 3600)
}

/// The simulated duration used by trace-driven experiments.
pub fn week() -> Duration {
    Duration::from_secs(week_secs())
}

/// Scales a profile's per-week volume expectations to the configured
/// window (used when reporting Table I-style per-week counts from a
/// shorter run).
pub fn week_scale() -> f64 {
    week_secs() as f64 / (7.0 * 24.0 * 3600.0)
}

/// Runs one scheme over a profile-generated trace for the configured
/// week window.
pub fn run_profile(cfg: &SimConfig, profile: &TraceProfile, seed: u64) -> SimReport {
    let dur = week();
    rolo_core::run_scheme(cfg, profile.generator(dur, seed), dur)
}

/// Runs one scheme over explicit records.
pub fn run_records(cfg: &SimConfig, records: Vec<TraceRecord>, dur: Duration) -> SimReport {
    rolo_core::run_scheme(cfg, records, dur)
}

/// One simulation job for [`run_jobs`]: a config, its trace records and
/// the simulated window.
#[derive(Debug, Clone)]
pub struct RunJob {
    /// Simulation configuration (scheme, geometry, seed).
    pub cfg: SimConfig,
    /// Trace records to replay.
    pub records: Vec<TraceRecord>,
    /// Simulated duration.
    pub duration: Duration,
}

/// Runs independent simulation jobs in parallel via [`parallel_map`],
/// preserving input order. Reports are bit-identical to running each job
/// serially with [`run_records`] — the simulator shares no mutable state
/// across jobs (the determinism test suite locks this down).
pub fn run_jobs(jobs: Vec<RunJob>) -> Vec<SimReport> {
    parallel_map(jobs, |job| {
        rolo_core::run_scheme(&job.cfg, job.records, job.duration)
    })
}

/// Runs a set of independent jobs in parallel with crossbeam scoped
/// threads, preserving input order.
pub fn parallel_map<T, R, F>(jobs: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = jobs.len();
    let mut slots: Vec<parking_lot::Mutex<Option<R>>> = Vec::with_capacity(n);
    slots.resize_with(n, || parking_lot::Mutex::new(None));
    let jobs: Vec<parking_lot::Mutex<Option<T>>> = jobs
        .into_iter()
        .map(|j| parking_lot::Mutex::new(Some(j)))
        .collect();
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n.max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    crossbeam::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = jobs[i].lock().take().expect("job taken once");
                let r = f(job);
                *slots[i].lock() = Some(r);
            });
        }
    })
    .expect("worker panicked");
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("job completed"))
        .collect()
}

/// Writes `value` to `results/<name>.json` (pretty-printed), creating
/// the directory if needed. Prints the path on success.
pub fn write_results<T: Serialize>(name: &str, value: &T) {
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => match std::fs::write(&path, json) {
            Ok(()) => println!("\nresults written to {}", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        },
        Err(e) => eprintln!("warning: cannot serialise results: {e}"),
    }
}

/// The results directory: `$ROLO_RESULTS_DIR` or `./results`.
pub fn results_dir() -> PathBuf {
    std::env::var("ROLO_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

/// Formats joules as megajoules with sensible precision.
pub fn mj(j: f64) -> String {
    format!("{:.2} MJ", j / 1e6)
}

/// FNV-1a (64-bit) digest of `bytes` as fixed-width hex — the digest
/// the golden engine-equivalence fixtures commit instead of multi-MB
/// `deterministic_json` bodies.
pub fn fnv1a_hex(bytes: &[u8]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    format!("{h:016x}")
}

/// Compact summary row used by several binaries.
#[derive(Debug, Clone, Serialize)]
pub struct SchemeRow {
    /// Scheme name.
    pub scheme: String,
    /// Total energy over the window (J).
    pub energy_j: f64,
    /// Energy normalised to the first (baseline) row.
    pub energy_vs_baseline: f64,
    /// Mean response time (ms).
    pub mean_response_ms: f64,
    /// Response normalised to baseline.
    pub response_vs_baseline: f64,
    /// Spin cycles over the window.
    pub spin_cycles: u64,
    /// User requests completed.
    pub requests: u64,
}

/// Builds normalized rows from reports, first report = baseline.
pub fn scheme_rows(reports: &[SimReport]) -> Vec<SchemeRow> {
    let base = &reports[0];
    reports
        .iter()
        .map(|r| SchemeRow {
            scheme: r.scheme.clone(),
            energy_j: r.total_energy_j,
            energy_vs_baseline: r.energy_vs(base),
            mean_response_ms: r.mean_response_ms(),
            response_vs_baseline: r.response_vs(base),
            spin_cycles: r.spin_cycles,
            requests: r.user_requests,
        })
        .collect()
}

/// Prints rows as an aligned table.
pub fn print_scheme_table(rows: &[SchemeRow]) {
    println!(
        "{:<8} {:>12} {:>10} {:>12} {:>10} {:>8} {:>9}",
        "scheme", "energy", "vs base", "mean resp", "vs base", "spins", "requests"
    );
    for r in rows {
        println!(
            "{:<8} {:>12} {:>10.3} {:>10.2}ms {:>10.3} {:>8} {:>9}",
            r.scheme,
            mj(r.energy_j),
            r.energy_vs_baseline,
            r.mean_response_ms,
            r.response_vs_baseline,
            r.spin_cycles,
            r.requests
        );
    }
}

/// Asserts a report drained consistently, with a labelled panic.
pub fn expect_consistent(report: &SimReport, label: &str) {
    if let Err(e) = &report.consistency {
        panic!("{label}: consistency audit failed: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..50).collect(), |x: i32| x * 2);
        assert_eq!(out, (0..50).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn week_scale_default_is_one() {
        if std::env::var("ROLO_WEEK_SECS").is_err() {
            assert!((week_scale() - 1.0).abs() < 1e-12);
        }
    }
}
