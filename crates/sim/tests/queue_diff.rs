//! Differential harness: [`CalendarQueue`] vs the legacy binary-heap
//! [`EventQueue`], driven in lockstep through randomized schedule/pop
//! interleavings.
//!
//! The calendar queue is the production future-event list; the heap is the
//! reference implementation whose `(time, seq)` delivery contract six PRs'
//! worth of byte-identical-determinism guarantees already lean on. Every
//! case here asserts the two implementations agree on the *entire*
//! observable surface: pop sequence (time, seq, payload), clock, length,
//! and lifetime counters — including the corners where a bucketed design
//! can diverge from a heap: same-instant ties, scheduling into the bucket
//! currently being drained, far-future overflow spill and migration, and
//! events landing exactly on bucket/horizon boundaries.

use proptest::prelude::*;
use rolo_sim::{CalendarQueue, Duration, EventQueue, ScheduledEvent, SimTime};

/// Pops one event from both queues and asserts full observable agreement.
fn pop_both(
    heap: &mut EventQueue<u64>,
    cal: &mut CalendarQueue<u64>,
) -> Result<Option<ScheduledEvent<u64>>, TestCaseError> {
    let a = heap.pop();
    let b = cal.pop();
    match (&a, &b) {
        (None, None) => {}
        (Some(x), Some(y)) => {
            prop_assert_eq!(x.time, y.time, "due times diverged");
            prop_assert_eq!(x.seq, y.seq, "sequence numbers diverged");
            prop_assert_eq!(x.payload, y.payload, "payloads diverged");
        }
        _ => prop_assert!(false, "one queue empty while the other pops"),
    }
    prop_assert_eq!(heap.now(), cal.now(), "clocks diverged");
    prop_assert_eq!(heap.len(), cal.len(), "lengths diverged");
    prop_assert_eq!(heap.popped_total(), cal.popped_total());
    Ok(a)
}

/// Schedules the same event on both queues; sequence numbers must match.
fn schedule_both(
    heap: &mut EventQueue<u64>,
    cal: &mut CalendarQueue<u64>,
    time: SimTime,
    payload: u64,
) -> Result<(), TestCaseError> {
    let sa = heap.schedule(time, payload);
    let sb = cal.schedule(time, payload);
    prop_assert_eq!(sa, sb, "schedule() returned different seqs");
    prop_assert_eq!(heap.scheduled_total(), cal.scheduled_total());
    prop_assert_eq!(heap.len(), cal.len());
    Ok(())
}

proptest! {
    /// Randomized interleavings of schedules (at arbitrary offsets from
    /// the advancing clock) and pops, on the production geometry. Offsets
    /// up to ~8 s straddle the default 4.2 s ring horizon, so both ring
    /// and overflow paths are exercised; offset 0 produces same-instant
    /// ties and schedule-during-drain inserts into the current bucket.
    #[test]
    fn prop_lockstep_default_geometry(
        ops in proptest::collection::vec((0u64..8_000_000, 0usize..4), 1..200)
    ) {
        let mut heap = EventQueue::new();
        let mut cal = CalendarQueue::new();
        for (idx, (delta, pops)) in ops.into_iter().enumerate() {
            let t = heap.now() + Duration::from_micros(delta);
            schedule_both(&mut heap, &mut cal, t, idx as u64)?;
            for _ in 0..pops {
                pop_both(&mut heap, &mut cal)?;
            }
        }
        while pop_both(&mut heap, &mut cal)?.is_some() {}
        prop_assert_eq!(heap.scheduled_total(), cal.scheduled_total());
        prop_assert_eq!(heap.popped_total(), cal.popped_total());
        prop_assert_eq!(cal.popped_total(), cal.scheduled_total());
    }

    /// Same interleavings on a pathologically tiny ring (4 buckets × 4 µs
    /// = 16 µs horizon): almost everything spills to overflow and the
    /// ring wraps thousands of times, hammering migration and the
    /// empty-ring jump.
    #[test]
    fn prop_lockstep_tiny_ring(
        ops in proptest::collection::vec((0u64..500, 0usize..4), 1..200)
    ) {
        let mut heap = EventQueue::new();
        let mut cal = CalendarQueue::with_geometry(2, 2);
        for (idx, (delta, pops)) in ops.into_iter().enumerate() {
            let t = heap.now() + Duration::from_micros(delta);
            schedule_both(&mut heap, &mut cal, t, idx as u64)?;
            for _ in 0..pops {
                pop_both(&mut heap, &mut cal)?;
            }
        }
        while pop_both(&mut heap, &mut cal)?.is_some() {}
        prop_assert_eq!(cal.popped_total(), cal.scheduled_total());
    }

    /// Bucket-boundary times: every scheduled time is a multiple (or
    /// off-by-one neighbor) of the bucket width and the ring horizon, the
    /// exact edges where a window-indexing bug would flip an event into
    /// the wrong bucket or tier.
    #[test]
    fn prop_lockstep_bucket_boundaries(
        cells in proptest::collection::vec((0u64..40, 0i64..3, 0usize..3), 1..150)
    ) {
        const WIDTH: u64 = 1 << 13; // default bucket width, µs
        const HORIZON: u64 = WIDTH << 9; // default ring horizon, µs
        let mut heap = EventQueue::new();
        let mut cal = CalendarQueue::new();
        for (idx, (windows, jitter, pops)) in cells.into_iter().enumerate() {
            // windows × width ± {0,1}, occasionally bumped past the horizon.
            let base =
                heap.now().as_micros() + windows * WIDTH + if windows == 39 { HORIZON } else { 0 };
            let t = match jitter {
                0 => base,
                1 => base + 1,
                _ => base.saturating_sub(1).max(heap.now().as_micros()),
            };
            schedule_both(&mut heap, &mut cal, SimTime::from_micros(t), idx as u64)?;
            for _ in 0..pops {
                pop_both(&mut heap, &mut cal)?;
            }
        }
        while pop_both(&mut heap, &mut cal)?.is_some() {}
    }

    /// Bursts of same-instant events interleaved with pops: FIFO
    /// tie-breaking must match the heap exactly even when the burst lands
    /// in the bucket currently being drained.
    #[test]
    fn prop_lockstep_same_instant_bursts(
        bursts in proptest::collection::vec((0u64..2_000, 1usize..12, 0usize..6), 1..60)
    ) {
        let mut heap = EventQueue::new();
        let mut cal = CalendarQueue::new();
        let mut idx = 0u64;
        for (delta, burst, pops) in bursts {
            let t = heap.now() + Duration::from_micros(delta);
            for _ in 0..burst {
                schedule_both(&mut heap, &mut cal, t, idx)?;
                idx += 1;
            }
            for _ in 0..pops {
                pop_both(&mut heap, &mut cal)?;
            }
        }
        while pop_both(&mut heap, &mut cal)?.is_some() {}
    }
}

/// Deterministic worst case: drain a bucket while a chain of completions
/// keeps rescheduling into it (the disk-service pattern), with a
/// far-future housekeeping tick pending the whole time.
#[test]
fn chained_reschedule_with_pending_overflow() {
    let mut heap = EventQueue::new();
    let mut cal = CalendarQueue::new();
    heap.schedule(SimTime::from_secs(3600), u64::MAX);
    cal.schedule(SimTime::from_secs(3600), u64::MAX);
    heap.schedule(SimTime::from_micros(10), 0);
    cal.schedule(SimTime::from_micros(10), 0);
    for i in 0..10_000u64 {
        let (a, b) = (heap.pop().unwrap(), cal.pop().unwrap());
        assert_eq!((a.time, a.seq, a.payload), (b.time, b.seq, b.payload));
        assert_eq!(a.payload, i);
        // Each completion schedules the next, 7 µs out (crosses bucket
        // boundaries every ~146 events).
        let t = heap.now() + Duration::from_micros(7);
        heap.schedule(t, i + 1);
        cal.schedule(t, i + 1);
    }
    // Drain: the chain tail, then the overflow tick.
    let mut rest = 0;
    loop {
        match (heap.pop(), cal.pop()) {
            (Some(a), Some(b)) => {
                assert_eq!((a.time, a.seq, a.payload), (b.time, b.seq, b.payload));
                rest += 1;
            }
            (None, None) => break,
            _ => panic!("queues diverged on emptiness"),
        }
    }
    assert_eq!(rest, 2);
    assert_eq!(heap.popped_total(), cal.popped_total());
    assert_eq!(heap.scheduled_total(), cal.scheduled_total());
}
