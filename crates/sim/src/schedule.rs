//! Stochastic event-schedule sampling.
//!
//! Helpers for pre-computing the instants at which rare events (disk
//! failures, scrub passes, …) fire during a run. Sampling the whole
//! schedule up front keeps the main event loop deterministic: the
//! schedule depends only on the seed, never on how the run interleaves.

use crate::rng::SimRng;
use crate::time::{Duration, SimTime};

/// Samples a Poisson arrival schedule with `rate_per_sec` events per
/// second over `[0, horizon)`, as successive exponential inter-arrival
/// gaps. A zero (or negative) rate yields an empty schedule.
///
/// # Example
///
/// ```
/// use rolo_sim::{schedule, Duration, SimRng};
/// let mut rng = SimRng::seed_from(7);
/// let times = schedule::exponential_arrivals(&mut rng, 0.1, Duration::from_secs(100));
/// assert!(times.windows(2).all(|w| w[0] <= w[1]));
/// ```
pub fn exponential_arrivals(
    rng: &mut SimRng,
    rate_per_sec: f64,
    horizon: Duration,
) -> Vec<SimTime> {
    let mut out = Vec::new();
    if rate_per_sec <= 0.0 || !rate_per_sec.is_finite() {
        return out;
    }
    let mean = 1.0 / rate_per_sec;
    let end = SimTime::ZERO + horizon;
    let mut t = SimTime::ZERO;
    loop {
        t += Duration::from_secs_f64(rng.exp(mean));
        if t >= end {
            return out;
        }
        out.push(t);
    }
}

/// Samples the instant of the *first* arrival of a Poisson process with
/// `rate_per_sec` events per second, if it lands inside `[0, horizon)`.
pub fn first_arrival(rng: &mut SimRng, rate_per_sec: f64, horizon: Duration) -> Option<SimTime> {
    if rate_per_sec <= 0.0 || !rate_per_sec.is_finite() {
        return None;
    }
    let t = SimTime::ZERO + Duration::from_secs_f64(rng.exp(1.0 / rate_per_sec));
    (t < SimTime::ZERO + horizon).then_some(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_yields_nothing() {
        let mut rng = SimRng::seed_from(1);
        assert!(exponential_arrivals(&mut rng, 0.0, Duration::from_secs(1000)).is_empty());
        assert!(first_arrival(&mut rng, 0.0, Duration::from_secs(1000)).is_none());
    }

    #[test]
    fn arrivals_are_sorted_and_bounded() {
        let mut rng = SimRng::seed_from(2);
        let horizon = Duration::from_secs(500);
        let times = exponential_arrivals(&mut rng, 0.05, horizon);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        assert!(times.iter().all(|&t| t < SimTime::ZERO + horizon));
    }

    #[test]
    fn count_matches_rate_roughly() {
        let mut rng = SimRng::seed_from(3);
        // λ = 0.1/s over 10 000 s → ~1000 arrivals.
        let times = exponential_arrivals(&mut rng, 0.1, Duration::from_secs(10_000));
        assert!(
            (800..1200).contains(&times.len()),
            "got {} arrivals",
            times.len()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = exponential_arrivals(&mut SimRng::seed_from(9), 0.2, Duration::from_secs(100));
        let b = exponential_arrivals(&mut SimRng::seed_from(9), 0.2, Duration::from_secs(100));
        assert_eq!(a, b);
    }
}
