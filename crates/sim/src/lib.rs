#![warn(missing_docs)]
//! Discrete-event simulation engine for the RoLo storage simulator.
//!
//! This crate provides the substrate that the disk model, RAID layer and
//! logging controllers are built on: a microsecond-resolution simulated
//! clock ([`SimTime`], [`Duration`]), a deterministic event queue
//! ([`EventQueue`]), and seeded random-number plumbing ([`rng`]).
//!
//! The engine is deliberately *not* generic over an event trait object
//! dispatch framework; higher layers drive their own state machines and use
//! the queue as an ordered timeline of opaque tokens. This keeps the hot
//! path monomorphic and the ownership story simple (no `Rc<RefCell<..>>`
//! webs), which matters when replaying multi-million-request traces.
//!
//! # Example
//!
//! ```
//! use rolo_sim::{EventQueue, SimTime, Duration};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(SimTime::ZERO + Duration::from_millis(5), "later");
//! q.schedule(SimTime::ZERO, "now");
//! assert_eq!(q.pop().map(|e| e.payload), Some("now"));
//! assert_eq!(q.pop().map(|e| e.payload), Some("later"));
//! assert!(q.pop().is_none());
//! ```

pub mod calendar;
pub mod fastmap;
pub mod queue;
pub mod rng;
pub mod schedule;
pub mod time;

pub use calendar::CalendarQueue;
pub use fastmap::{IdHasher, IoMap, IoSet};
pub use queue::{EventQueue, FutureEventList, ScheduledEvent};
pub use rng::SimRng;
pub use time::{Duration, SimTime};
