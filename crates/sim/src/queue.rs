//! Deterministic event queue.
//!
//! A thin wrapper over a binary heap keyed by `(time, sequence)`. The
//! sequence number breaks ties so that two events scheduled for the same
//! instant are delivered in the order they were scheduled — this is what
//! makes whole-simulation runs reproducible regardless of heap internals.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event held in the queue: a payload tagged with its due time.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<T> {
    /// When the event fires.
    pub time: SimTime,
    /// Monotonic insertion index; ties on `time` fire in insertion order.
    pub seq: u64,
    /// The caller-defined event payload.
    pub payload: T,
}

impl<T> PartialEq for ScheduledEvent<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for ScheduledEvent<T> {}

impl<T> PartialOrd for ScheduledEvent<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for ScheduledEvent<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The future-event-list contract shared by every queue implementation.
///
/// Both the legacy binary-heap [`EventQueue`] (the reference
/// implementation) and the bucketed [`CalendarQueue`](crate::CalendarQueue)
/// implement this trait with *identical observable behavior*: events are
/// delivered in non-decreasing `(time, seq)` order, `seq` is a monotonic
/// per-queue schedule counter, scheduling in the past clamps to `now` (and
/// panics in debug builds), and the lifetime counters account for every
/// event exactly once. The differential proptest in `tests/queue_diff.rs`
/// drives both implementations in lockstep to lock this down.
pub trait FutureEventList<T> {
    /// Current simulated time: the due time of the most recently popped
    /// event (never moves backwards).
    fn now(&self) -> SimTime;
    /// Schedules `payload` to fire at `time`, returning its sequence
    /// number. Scheduling in the past is a caller logic error: debug
    /// builds panic, release builds clamp the event to fire "now".
    fn schedule(&mut self, time: SimTime, payload: T) -> u64;
    /// Removes and returns the earliest event, advancing the clock to
    /// its due time. Returns `None` when the queue is empty.
    fn pop(&mut self) -> Option<ScheduledEvent<T>>;
    /// Due time of the earliest pending event, if any.
    fn peek_time(&self) -> Option<SimTime>;
    /// Number of pending events.
    fn len(&self) -> usize;
    /// True if no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Drops every pending event (the clock and counters are unchanged).
    fn clear(&mut self);
    /// Total events scheduled over the queue's lifetime (profiling).
    fn scheduled_total(&self) -> u64;
    /// Total events popped over the queue's lifetime (profiling).
    fn popped_total(&self) -> u64;
}

/// A future-event list delivering events in non-decreasing time order, with
/// FIFO tie-breaking among events scheduled for the same instant.
///
/// This is the legacy binary-heap implementation, kept as the reference
/// against which [`CalendarQueue`](crate::CalendarQueue) is differentially
/// tested.
///
/// # Example
///
/// ```
/// use rolo_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_micros(10), 'b');
/// q.schedule(SimTime::from_micros(10), 'c');
/// q.schedule(SimTime::from_micros(5), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<ScheduledEvent<T>>,
    next_seq: u64,
    now: SimTime,
    popped: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// Current simulated time: the due time of the most recently popped
    /// event (never moves backwards).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` to fire at `time`.
    ///
    /// Scheduling in the past is a logic error in the caller; in debug
    /// builds it panics, in release builds the event fires "now".
    pub fn schedule(&mut self, time: SimTime, payload: T) -> u64 {
        debug_assert!(
            time >= self.now,
            "event scheduled in the past: {time:?} < now {:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent {
            time: time.max(self.now),
            seq,
            payload,
        });
        seq
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// due time. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<ScheduledEvent<T>> {
        let ev = self.heap.pop()?;
        debug_assert!(ev.time >= self.now);
        self.now = ev.time;
        self.popped += 1;
        Some(ev)
    }

    /// Total events scheduled over the queue's lifetime (profiling).
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Total events popped over the queue's lifetime (profiling).
    pub fn popped_total(&self) -> u64 {
        self.popped
    }

    /// Due time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops every pending event (the clock is unchanged).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<T> FutureEventList<T> for EventQueue<T> {
    #[inline]
    fn now(&self) -> SimTime {
        EventQueue::now(self)
    }
    #[inline]
    fn schedule(&mut self, time: SimTime, payload: T) -> u64 {
        EventQueue::schedule(self, time, payload)
    }
    #[inline]
    fn pop(&mut self) -> Option<ScheduledEvent<T>> {
        EventQueue::pop(self)
    }
    #[inline]
    fn peek_time(&self) -> Option<SimTime> {
        EventQueue::peek_time(self)
    }
    #[inline]
    fn len(&self) -> usize {
        EventQueue::len(self)
    }
    #[inline]
    fn clear(&mut self) {
        EventQueue::clear(self)
    }
    #[inline]
    fn scheduled_total(&self) -> u64 {
        EventQueue::scheduled_total(self)
    }
    #[inline]
    fn popped_total(&self) -> u64 {
        EventQueue::popped_total(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), 3);
        q.schedule(SimTime::from_micros(10), 1);
        q.schedule(SimTime::from_micros(20), 2);
        assert_eq!(q.pop().unwrap().payload, 1);
        assert_eq!(q.pop().unwrap().payload, 2);
        assert_eq!(q.pop().unwrap().payload, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(7);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().payload, i);
        }
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(5), ());
        q.schedule(SimTime::from_micros(9), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(5));
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(9));
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), "a");
        let e = q.pop().unwrap();
        assert_eq!(e.payload, "a");
        // Scheduling relative to the advanced clock still works.
        q.schedule(q.now() + crate::Duration::from_micros(1), "b");
        assert_eq!(q.pop().unwrap().payload, "b");
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::from_micros(1), ());
        q.schedule(SimTime::from_micros(2), ());
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
    }

    proptest! {
        #[test]
        fn prop_dequeue_order_is_nondecreasing(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule(SimTime::from_micros(*t), i);
            }
            let mut last = SimTime::ZERO;
            let mut count = 0;
            while let Some(e) = q.pop() {
                prop_assert!(e.time >= last);
                last = e.time;
                count += 1;
            }
            prop_assert_eq!(count, times.len());
        }

        #[test]
        fn prop_same_time_fifo(n in 1usize..64) {
            let mut q = EventQueue::new();
            for i in 0..n {
                q.schedule(SimTime::from_micros(42), i);
            }
            for i in 0..n {
                prop_assert_eq!(q.pop().unwrap().payload, i);
            }
        }

        /// Arbitrary interleavings of schedules (at arbitrary offsets
        /// from the advancing clock) and pops: delivery stays
        /// time-monotonic, equal-time events pop in schedule order, and
        /// the lifetime counters account for every event exactly once.
        #[test]
        fn prop_interleaved_schedules_stay_ordered(
            ops in proptest::collection::vec((0u64..500, 0usize..4), 1..150)
        ) {
            let mut q = EventQueue::new();
            let mut scheduled: u64 = 0;
            let mut popped: u64 = 0;
            let mut last: Option<(SimTime, u64)> = None;
            let mut check = |e: &ScheduledEvent<u64>| -> Result<(), TestCaseError> {
                if let Some((lt, lp)) = last {
                    prop_assert!(e.time >= lt, "time went backwards");
                    if e.time == lt {
                        // Payloads are global schedule indices, so FIFO
                        // tie-breaking means strictly increasing payloads
                        // within one instant.
                        prop_assert!(e.payload > lp, "FIFO tie-break violated");
                    }
                }
                last = Some((e.time, e.payload));
                Ok(())
            };
            for (delta, pops) in ops {
                q.schedule(q.now() + crate::Duration::from_micros(delta), scheduled);
                scheduled += 1;
                for _ in 0..pops {
                    if let Some(e) = q.pop() {
                        check(&e)?;
                        popped += 1;
                    }
                }
            }
            while let Some(e) = q.pop() {
                check(&e)?;
                popped += 1;
            }
            prop_assert_eq!(popped, scheduled, "every event popped exactly once");
            prop_assert_eq!(q.scheduled_total(), scheduled);
            prop_assert_eq!(q.popped_total(), popped);
        }
    }
}
