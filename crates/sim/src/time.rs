//! Simulated time.
//!
//! All simulation time is kept in integer **microseconds** so that event
//! ordering is exact and runs are bit-for-bit reproducible. Two newtypes are
//! provided: [`SimTime`] is a point on the simulated timeline and
//! [`Duration`] is a span between two points. They are deliberately distinct
//! types (`SimTime + SimTime` does not compile) to rule out a class of
//! unit-confusion bugs.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, in microseconds since the start of the run.
///
/// # Example
///
/// ```
/// use rolo_sim::{SimTime, Duration};
/// let t = SimTime::ZERO + Duration::from_secs(2);
/// assert_eq!(t.as_micros(), 2_000_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
///
/// # Example
///
/// ```
/// use rolo_sim::Duration;
/// let d = Duration::from_millis(3) + Duration::from_micros(500);
/// assert_eq!(d.as_micros(), 3_500);
/// assert!((d.as_secs_f64() - 0.0035).abs() < 1e-12);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration(u64);

impl SimTime {
    /// The origin of the simulated timeline.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time point from raw microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates a time point from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates a time point from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Returns the raw microsecond count.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the time as fractional seconds (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Elapsed duration since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    #[inline]
    pub fn since(self, earlier: SimTime) -> Duration {
        debug_assert!(
            earlier <= self,
            "SimTime::since called with a later time: {earlier:?} > {self:?}"
        );
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating duration until `later` (zero if `later` is in the past).
    #[inline]
    pub fn until(self, later: SimTime) -> Duration {
        Duration(later.0.saturating_sub(self.0))
    }

    /// Returns the later of two time points.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Returns the earlier of two time points.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl Duration {
    /// The zero-length span.
    pub const ZERO: Duration = Duration(0);
    /// The largest representable span.
    pub const MAX: Duration = Duration(u64::MAX);

    /// Creates a duration from raw microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Duration(us)
    }

    /// Creates a duration from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000)
    }

    /// Creates a duration from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration seconds: {s}");
        Duration((s * 1e6).round() as u64)
    }

    /// Creates a duration from fractional milliseconds, rounding to the
    /// nearest microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative or not finite.
    #[inline]
    pub fn from_millis_f64(ms: f64) -> Self {
        assert!(ms.is_finite() && ms >= 0.0, "invalid duration millis: {ms}");
        Duration((ms * 1e3).round() as u64)
    }

    /// Returns the raw microsecond count.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the span as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the span as fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// True if the span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }

    /// Returns the larger of two spans.
    #[inline]
    pub fn max(self, other: Duration) -> Duration {
        Duration(self.0.max(other.0))
    }

    /// Returns the smaller of two spans.
    #[inline]
    pub fn min(self, other: Duration) -> Duration {
        Duration(self.0.min(other.0))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Duration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: Duration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: SimTime) -> Duration {
        self.since(rhs)
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        debug_assert!(rhs.0 <= self.0, "Duration subtraction underflow");
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Duration {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(Duration::from_secs(1).as_micros(), 1_000_000);
        assert_eq!(Duration::from_secs_f64(0.25).as_micros(), 250_000);
        assert_eq!(Duration::from_millis_f64(1.5).as_micros(), 1_500);
    }

    #[test]
    fn arithmetic_basics() {
        let t = SimTime::from_secs(10);
        let d = Duration::from_secs(4);
        assert_eq!((t + d).as_micros(), 14_000_000);
        assert_eq!((t - d).as_micros(), 6_000_000);
        assert_eq!((t + d) - t, d);
        assert_eq!(t.since(SimTime::from_secs(6)), d);
    }

    #[test]
    fn until_saturates() {
        let t = SimTime::from_secs(10);
        assert_eq!(t.until(SimTime::from_secs(4)), Duration::ZERO);
        assert_eq!(t.until(SimTime::from_secs(14)), Duration::from_secs(4));
    }

    #[test]
    fn duration_scaling() {
        let d = Duration::from_millis(2);
        assert_eq!((d * 3).as_micros(), 6_000);
        assert_eq!((d / 2).as_micros(), 1_000);
    }

    #[test]
    fn duration_sum() {
        let total: Duration = (1..=4).map(Duration::from_millis).sum();
        assert_eq!(total, Duration::from_millis(10));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(Duration::from_micros(12).to_string(), "12us");
        assert_eq!(Duration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(Duration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(
            Duration::from_secs(1).max(Duration::from_secs(2)),
            Duration::from_secs(2)
        );
    }

    #[test]
    fn saturating_behaviour_at_extremes() {
        assert_eq!(SimTime::MAX + Duration::from_secs(1), SimTime::MAX);
        assert_eq!(
            Duration::ZERO.saturating_sub(Duration::from_secs(1)),
            Duration::ZERO
        );
    }
}
