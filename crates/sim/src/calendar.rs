//! Two-tier calendar (bucketed) event queue.
//!
//! Discrete-event storage simulations schedule almost every event a few
//! microseconds-to-milliseconds into the future (disk service completions,
//! controller wakes), with a thin tail of far-future events (power samples,
//! scrub ticks, failure arrivals). A binary heap pays `O(log n)` per
//! operation on all of them; a calendar queue pays amortized `O(1)` on the
//! near-future bulk by hashing events into time buckets and only sorting a
//! bucket when the clock enters it.
//!
//! [`CalendarQueue`] is a drop-in replacement for [`EventQueue`] — same
//! `(time, seq)` delivery contract, same clamp-past-to-now semantics, same
//! lifetime counters — implemented as:
//!
//! - a **ring of `N` buckets**, each `W` microseconds wide, covering the
//!   absolute-time window `[cur_win·W, (cur_win+N)·W)`. An event due in
//!   window `w = time/W` lives in slot `w mod N`. Because a bucket is fully
//!   drained and left empty before the ring advances past it, each slot
//!   holds events of exactly one window at a time.
//! - an **overflow heap** for events at or beyond the ring horizon. As the
//!   ring advances, newly covered events migrate from the heap into their
//!   buckets (in heap order, i.e. already `(time, seq)`-sorted).
//!
//! A bucket is sorted by `(time, seq)` lazily, on first pop after the clock
//! enters it. Scheduling *into the current bucket mid-drain* (the common
//! "completion schedules the next completion" pattern) marks it dirty and
//! the unpopped remainder is re-sorted on the next pop. This is exact, not
//! approximate: a newly scheduled event has `time ≥ now` (the due time of
//! every already-popped event) and a strictly larger `seq` than everything
//! in the queue, so re-sorting the remainder can never reorder it ahead of
//! an event that should already have fired.
//!
//! Invariants (checked by debug assertions and `tests/queue_diff.rs`):
//!
//! 1. At every public-API boundary, `now` lies inside the current window
//!    (or the queue has never popped and both sit at zero), so a schedule
//!    clamped to `now` always maps into the ring, never behind it.
//! 2. Ring events satisfy `cur_win ≤ time/W < cur_win + N`; overflow
//!    events satisfy `time/W ≥ cur_win + N` at the moment they are pushed
//!    (and migrate as soon as the horizon reaches them).
//! 3. `len == ring_len + overflow.len()` and
//!    `scheduled_total == popped_total + len`.

use crate::queue::{FutureEventList, ScheduledEvent};
use crate::time::SimTime;
use std::collections::{BinaryHeap, VecDeque};

/// Default bucket width: 2^13 µs ≈ 8 ms — a few disk service times per
/// bucket under load. Wider buckets mean a physically smaller ring (the
/// dominant cost on sparse streams is cold cache lines, not intra-bucket
/// sorting, and the sort is lazy and per-entered-bucket anyway).
const DEFAULT_WIDTH_SHIFT: u32 = 13;
/// Default bucket count: 2^9 buckets × 8 ms ≈ 4.2 s of ring horizon,
/// wide enough that only coarse housekeeping (power samples, scrub ticks,
/// failure arrivals) spills into the overflow heap, while the whole ring
/// (512 `VecDeque` headers + an 8-word occupancy bitmap) stays cache-
/// resident.
const DEFAULT_BUCKET_SHIFT: u32 = 9;

/// A two-tier calendar queue: near-future bucketed ring plus far-future
/// overflow heap. Drop-in replacement for [`EventQueue`] with identical
/// observable behavior (see [`FutureEventList`]).
///
/// # Example
///
/// ```
/// use rolo_sim::{CalendarQueue, FutureEventList, SimTime};
///
/// let mut q = CalendarQueue::new();
/// q.schedule(SimTime::from_micros(10), 'b');
/// q.schedule(SimTime::from_micros(10), 'c');
/// q.schedule(SimTime::from_secs(60), 'd'); // far future: overflow tier
/// q.schedule(SimTime::from_micros(5), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c', 'd']);
/// ```
///
/// [`EventQueue`]: crate::EventQueue
#[derive(Debug, Clone)]
pub struct CalendarQueue<T> {
    /// Ring of buckets; slot for window `w` is `w & mask`.
    buckets: Vec<VecDeque<ScheduledEvent<T>>>,
    /// log2 of the bucket width in microseconds.
    width_shift: u32,
    /// `buckets.len() - 1`; bucket count is a power of two.
    mask: u64,
    /// Window index (`time >> width_shift`) of the current bucket.
    cur_win: u64,
    /// The current bucket's unpopped remainder needs a `(time, seq)` sort
    /// before the next pop.
    dirty: bool,
    /// Events pending in the ring (excludes `overflow`).
    ring_len: usize,
    /// Occupancy bitmap, one bit per ring slot (bit set ⟺ bucket
    /// non-empty). Sparse streams — long idle stretches between disk
    /// I/Os — would otherwise pay one probe per empty 1 ms window; the
    /// bitmap lets [`CalendarQueue::pop`] jump to the next occupied
    /// bucket in a handful of word scans.
    occ: Vec<u64>,
    /// Far-future tier: events at or beyond the ring horizon.
    overflow: BinaryHeap<ScheduledEvent<T>>,
    next_seq: u64,
    now: SimTime,
    popped: u64,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CalendarQueue<T> {
    /// Creates an empty queue with the default geometry (8 ms × 512
    /// buckets ≈ 4.2 s horizon) and the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Self::with_geometry(DEFAULT_WIDTH_SHIFT, DEFAULT_BUCKET_SHIFT)
    }

    /// Creates an empty queue with `2^bucket_shift` buckets of
    /// `2^width_shift` microseconds each. Exposed so the differential
    /// tests can force tiny rings that exercise overflow migration and
    /// window wrap-around; simulation code uses [`CalendarQueue::new`].
    pub fn with_geometry(width_shift: u32, bucket_shift: u32) -> Self {
        assert!(width_shift < 32, "bucket width out of range");
        assert!(
            (1..=24).contains(&bucket_shift),
            "bucket count out of range"
        );
        let n = 1usize << bucket_shift;
        let mut buckets = Vec::with_capacity(n);
        buckets.resize_with(n, VecDeque::new);
        CalendarQueue {
            buckets,
            width_shift,
            mask: (n as u64) - 1,
            cur_win: 0,
            dirty: false,
            ring_len: 0,
            occ: vec![0; n.div_ceil(64)],
            overflow: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// Marks slot `s` occupied.
    #[inline]
    fn occ_set(&mut self, s: usize) {
        self.occ[s / 64] |= 1u64 << (s % 64);
    }

    /// Marks slot `s` empty.
    #[inline]
    fn occ_clear(&mut self, s: usize) {
        self.occ[s / 64] &= !(1u64 << (s % 64));
    }

    /// Ring distance from the current (empty, bit-clear) bucket to the
    /// next occupied one. Caller guarantees `ring_len > 0`.
    fn next_occupied_step(&self) -> u64 {
        let n = self.mask + 1;
        let start = (self.slot(self.cur_win) as u64 + 1) & self.mask;
        let words = self.occ.len() as u64;
        let (sw, sb) = (start / 64, start % 64);
        for k in 0..=words {
            let wi = (sw + k) % words;
            let mut w = self.occ[wi as usize];
            if k == 0 {
                w &= !0u64 << sb; // only bits at or after `start`
            }
            if w != 0 {
                let bit = wi * 64 + u64::from(w.trailing_zeros());
                // `bit` is an absolute slot; convert to a step count
                // from the current slot (distance from `start` plus the
                // one window `start` already sits ahead).
                return ((bit + n - start) & self.mask) + 1;
            }
        }
        unreachable!("ring_len > 0 but occupancy bitmap is empty")
    }

    /// Window index of `time`.
    #[inline]
    fn win(&self, time: SimTime) -> u64 {
        time.as_micros() >> self.width_shift
    }

    /// Ring slot for window `w`.
    #[inline]
    fn slot(&self, w: u64) -> usize {
        (w & self.mask) as usize
    }

    /// First window index *not* covered by the ring.
    #[inline]
    fn horizon(&self) -> u64 {
        // Saturating: with `now` near `SimTime::MAX` the horizon pins to
        // the end of time and everything stays in the ring.
        self.cur_win.saturating_add(self.mask + 1)
    }

    /// Moves every overflow event now covered by the ring into its bucket.
    /// The heap yields them in `(time, seq)` order, so each target bucket
    /// receives an already-sorted run.
    fn migrate_overflow(&mut self) {
        let horizon = self.horizon();
        while let Some(top) = self.overflow.peek() {
            if self.win(top.time) >= horizon {
                break;
            }
            let ev = self.overflow.pop().expect("peeked");
            let s = self.slot(self.win(ev.time));
            self.buckets[s].push_back(ev);
            self.ring_len += 1;
            self.occ_set(s);
        }
    }

    /// Current simulated time: the due time of the most recently popped
    /// event (never moves backwards).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` to fire at `time` (see
    /// [`FutureEventList::schedule`] for the past-clamp contract).
    pub fn schedule(&mut self, time: SimTime, payload: T) -> u64 {
        debug_assert!(
            time >= self.now,
            "event scheduled in the past: {time:?} < now {:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let ev = ScheduledEvent {
            time: time.max(self.now),
            seq,
            payload,
        };
        let w = self.win(ev.time);
        debug_assert!(w >= self.cur_win, "schedule behind the current window");
        if w < self.horizon() {
            let s = self.slot(w);
            self.buckets[s].push_back(ev);
            self.ring_len += 1;
            self.occ_set(s);
            if w == self.cur_win {
                // Mid-drain insert into the bucket being popped: the
                // unpopped remainder re-sorts on the next pop.
                self.dirty = true;
            }
        } else {
            self.overflow.push(ev);
        }
        seq
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// due time. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<ScheduledEvent<T>> {
        if self.ring_len == 0 && self.overflow.is_empty() {
            return None;
        }
        loop {
            let s = self.slot(self.cur_win);
            if !self.buckets[s].is_empty() {
                if self.dirty {
                    if self.buckets[s].len() > 1 {
                        self.buckets[s]
                            .make_contiguous()
                            .sort_unstable_by_key(|e| (e.time, e.seq));
                    }
                    self.dirty = false;
                }
                let ev = self.buckets[s].pop_front().expect("checked non-empty");
                self.ring_len -= 1;
                if self.buckets[s].is_empty() {
                    self.occ_clear(s);
                }
                debug_assert!(ev.time >= self.now);
                debug_assert_eq!(self.win(ev.time), self.cur_win);
                self.now = ev.time;
                self.popped += 1;
                return Some(ev);
            }
            // Current bucket exhausted: advance the ring. If the ring is
            // entirely empty, jump straight to the earliest overflow
            // window; otherwise jump to the next occupied bucket (via
            // the bitmap — never one empty window at a time).
            if self.ring_len == 0 {
                let t = self.overflow.peek().expect("queue non-empty").time;
                self.cur_win = self.win(t);
            } else {
                self.cur_win += self.next_occupied_step();
            }
            self.migrate_overflow();
            self.dirty = true; // entering a bucket: sort before first pop
        }
    }

    /// Due time of the earliest pending event, if any.
    ///
    /// `O(N + bucket)` scan — fine for tests and drain diagnostics, not
    /// for per-event use (the simulator main loop only pops).
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.ring_len > 0 {
            for step in 0..=self.mask {
                let s = self.slot(self.cur_win + step);
                if let Some(t) = self.buckets[s].iter().map(|e| e.time).min() {
                    return Some(t);
                }
            }
            unreachable!("ring_len > 0 but no bucket holds an event");
        }
        self.overflow.peek().map(|e| e.time)
    }

    /// Total events scheduled over the queue's lifetime (profiling).
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Total events popped over the queue's lifetime (profiling).
    pub fn popped_total(&self) -> u64 {
        self.popped
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.ring_len + self.overflow.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every pending event (the clock is unchanged). The ring is
    /// re-anchored at the clock's window so later schedules land ahead of
    /// the current bucket.
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.occ.fill(0);
        self.overflow.clear();
        self.ring_len = 0;
        self.dirty = false;
        self.cur_win = self.win(self.now);
    }

    /// Number of events currently in the far-future overflow tier
    /// (diagnostics for bench reports and tests).
    pub fn overflow_len(&self) -> usize {
        self.overflow.len()
    }
}

impl<T> FutureEventList<T> for CalendarQueue<T> {
    #[inline]
    fn now(&self) -> SimTime {
        CalendarQueue::now(self)
    }
    #[inline]
    fn schedule(&mut self, time: SimTime, payload: T) -> u64 {
        CalendarQueue::schedule(self, time, payload)
    }
    #[inline]
    fn pop(&mut self) -> Option<ScheduledEvent<T>> {
        CalendarQueue::pop(self)
    }
    #[inline]
    fn peek_time(&self) -> Option<SimTime> {
        CalendarQueue::peek_time(self)
    }
    #[inline]
    fn len(&self) -> usize {
        CalendarQueue::len(self)
    }
    #[inline]
    fn clear(&mut self) {
        CalendarQueue::clear(self)
    }
    #[inline]
    fn scheduled_total(&self) -> u64 {
        CalendarQueue::scheduled_total(self)
    }
    #[inline]
    fn popped_total(&self) -> u64 {
        CalendarQueue::popped_total(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut q = CalendarQueue::new();
        q.schedule(SimTime::from_micros(30), 3);
        q.schedule(SimTime::from_micros(10), 1);
        q.schedule(SimTime::from_micros(20), 2);
        assert_eq!(q.pop().unwrap().payload, 1);
        assert_eq!(q.pop().unwrap().payload, 2);
        assert_eq!(q.pop().unwrap().payload, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_fifo_within_one_bucket() {
        let mut q = CalendarQueue::new();
        let t = SimTime::from_micros(7);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().payload, i);
        }
    }

    #[test]
    fn far_future_spills_to_overflow_and_comes_back() {
        let mut q = CalendarQueue::new();
        // Default horizon is ~4.2 s; one hour is deep overflow.
        q.schedule(SimTime::from_secs(3600), "late");
        assert_eq!(q.overflow_len(), 1);
        q.schedule(SimTime::from_micros(3), "early");
        assert_eq!(q.pop().unwrap().payload, "early");
        let e = q.pop().unwrap();
        assert_eq!(e.payload, "late");
        assert_eq!(e.time, SimTime::from_secs(3600));
        assert_eq!(q.overflow_len(), 0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn schedule_during_drain_resorts_current_bucket() {
        let mut q = CalendarQueue::new();
        // Three events in one bucket; after popping the first, schedule
        // two more inside the same bucket, one earlier than the pending
        // remainder.
        q.schedule(SimTime::from_micros(100), "a");
        q.schedule(SimTime::from_micros(300), "d");
        q.schedule(SimTime::from_micros(500), "f");
        assert_eq!(q.pop().unwrap().payload, "a");
        q.schedule(SimTime::from_micros(400), "e");
        q.schedule(SimTime::from_micros(200), "b");
        q.schedule(SimTime::from_micros(300), "d2"); // ties after "d" (larger seq)
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["b", "d", "d2", "e", "f"]);
    }

    #[test]
    fn ring_wraps_across_many_windows() {
        // Tiny ring: 4 buckets × 4 µs = 16 µs horizon; walk far past it.
        let mut q = CalendarQueue::with_geometry(2, 2);
        for i in 0..64u64 {
            q.schedule(SimTime::from_micros(i * 3), i);
        }
        for i in 0..64u64 {
            let e = q.pop().unwrap();
            assert_eq!(e.payload, i);
            assert_eq!(e.time, SimTime::from_micros(i * 3));
        }
        assert!(q.pop().is_none());
        assert_eq!(q.scheduled_total(), 64);
        assert_eq!(q.popped_total(), 64);
    }

    #[test]
    fn empty_ring_jumps_to_overflow_without_stepping() {
        let mut q = CalendarQueue::new();
        q.schedule(SimTime::from_secs(86_400), ()); // one simulated day out
        let e = q.pop().unwrap();
        assert_eq!(e.time, SimTime::from_secs(86_400));
        // Clock and ring are re-anchored at the popped window.
        assert_eq!(q.now(), SimTime::from_secs(86_400));
        q.schedule(q.now() + Duration::from_micros(1), ());
        assert!(q.pop().is_some());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = CalendarQueue::new();
        q.schedule(SimTime::from_micros(5), ());
        q.schedule(SimTime::from_micros(9), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(5));
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(9));
    }

    #[test]
    fn len_clear_and_counters() {
        let mut q = CalendarQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::from_micros(1), ());
        q.schedule(SimTime::from_secs(100), ()); // overflow
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.overflow_len(), 0);
        // Counters survive clear, matching EventQueue.
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.popped_total(), 0);
        // Scheduling after clear still delivers.
        q.schedule(SimTime::from_micros(2), ());
        assert!(q.pop().is_some());
    }

    #[test]
    fn peek_time_sees_ring_and_overflow() {
        let mut q: CalendarQueue<()> = CalendarQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_secs(50), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(50)));
        q.schedule(SimTime::from_micros(9), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(9)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(50)));
    }
}
