//! Seeded random-number plumbing.
//!
//! Every stochastic component of the simulator (arrival processes, request
//! placement, seek-start positions…) draws from a [`SimRng`] created from an
//! explicit seed, so whole experiments are reproducible from their config.
//! Independent sub-streams are derived with [`SimRng::fork`] so that adding
//! randomness to one component never perturbs another.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random source with cheap derived sub-streams.
///
/// # Example
///
/// ```
/// use rolo_sim::SimRng;
/// use rand::RngCore;
/// let mut a = SimRng::seed_from(7);
/// let mut b = SimRng::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// // Forked streams are independent of the parent's subsequent draws.
/// let mut fork = a.fork("arrivals");
/// let _ = fork.next_u64();
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
    seed: u64,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this generator was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent sub-stream named `label`.
    ///
    /// The child seed is a hash of the parent seed and the label, so the
    /// same `(seed, label)` always yields the same stream and different
    /// labels yield (practically) independent streams.
    pub fn fork(&self, label: &str) -> SimRng {
        // FNV-1a over the label, mixed with the parent seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.seed.rotate_left(17);
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        SimRng::seed_from(h)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "SimRng::below(0)");
        self.inner.gen_range(0..n)
    }

    /// Appends `count` uniform draws in `[0, n)` to `out`.
    ///
    /// Draw-for-draw identical to calling [`below`](Self::below) `count`
    /// times: batching changes *when* the stream is consumed, never the
    /// sequence of values it yields, so pre-drawing a buffer is invisible
    /// to any consumer that pops it in order.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn fill_below(&mut self, n: u64, count: usize, out: &mut Vec<u64>) {
        assert!(n > 0, "SimRng::fill_below(0)");
        out.reserve(count);
        for _ in 0..count {
            out.push(self.inner.gen_range(0..n));
        }
    }

    /// Exponentially distributed draw with the given mean.
    ///
    /// Used for Poisson inter-arrival times and CTMC sojourns.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not finite and positive.
    pub fn exp(&mut self, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "invalid exponential mean: {mean}"
        );
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }

    /// Bernoulli draw with probability `p` of `true`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "invalid probability: {p}");
        self.inner.gen::<f64>() < p
    }

    /// Access the underlying `rand` generator for distribution sampling.
    pub fn raw(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(123);
        let mut b = SimRng::seed_from(123);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_label_deterministic() {
        let parent = SimRng::seed_from(9);
        let mut f1 = parent.fork("x");
        let mut f2 = parent.fork("x");
        let mut f3 = parent.fork("y");
        assert_eq!(f1.next_u64(), f2.next_u64());
        assert_ne!(f1.next_u64(), f3.next_u64());
    }

    #[test]
    fn exp_has_roughly_right_mean() {
        let mut rng = SimRng::seed_from(42);
        let n = 20_000;
        let mean = 5.0;
        let total: f64 = (0..n).map(|_| rng.exp(mean)).sum();
        let sample_mean = total / n as f64;
        assert!(
            (sample_mean - mean).abs() < 0.2,
            "sample mean {sample_mean}"
        );
    }

    #[test]
    fn fill_below_matches_scalar_draws() {
        let mut scalar = SimRng::seed_from(55);
        let mut batched = SimRng::seed_from(55);
        let mut buf = Vec::new();
        batched.fill_below(1000, 64, &mut buf);
        for (i, &v) in buf.iter().enumerate() {
            assert_eq!(v, scalar.below(1000), "draw {i} diverged");
        }
        // The streams stay aligned after the batch.
        assert_eq!(batched.next_u64(), scalar.next_u64());
    }

    #[test]
    fn below_is_in_range() {
        let mut rng = SimRng::seed_from(1);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(2);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn unit_in_half_open_interval() {
        let mut rng = SimRng::seed_from(3);
        for _ in 0..1000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
