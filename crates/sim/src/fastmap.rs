//! Identity-style hashing for `u64`-keyed hot-path maps.
//!
//! The simulator's in-flight bookkeeping (sub-request ids, user ids,
//! scrub/rebuild tags) is keyed by densely-allocated `u64` counters. The
//! std `RandomState` SipHash is overkill for those keys — and, being
//! randomly seeded per process, it is also the one stdlib component whose
//! behavior *could* leak into results if any code path ever iterated a
//! map. [`IdHasher`] replaces it with a single Fibonacci multiply: fast,
//! well-mixed for sequential ids, and — critically — **deterministic
//! across processes**, so map iteration order can never reintroduce the
//! nondeterminism the cross-process determinism suite guards against.
//!
//! Not DoS-resistant by design: keys come from the simulator's own
//! monotonic counters, never from untrusted input.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative hasher for trusted integer keys.
///
/// `write_u64` (the only call the map issues for `u64` keys) multiplies by
/// 2⁶⁴/φ, spreading sequential ids across the high bits that `HashMap`
/// uses for bucket selection. Arbitrary byte streams fall back to FNV-1a
/// so composite keys still hash correctly if one ever lands in an
/// [`IoMap`].
#[derive(Debug, Default, Clone)]
pub struct IdHasher(u64);

/// 2⁶⁴ / φ — the Fibonacci hashing constant.
const PHI64: u64 = 0x9E37_79B9_7F4A_7C15;

impl Hasher for IdHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = n.wrapping_mul(PHI64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.write_u64(u64::from(n));
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }

    fn write(&mut self, bytes: &[u8]) {
        // FNV-1a fallback for non-integer keys (tuples, strings).
        let mut h = if self.0 == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.0
        };
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        self.0 = h;
    }
}

/// `HashMap` keyed by simulator-allocated `u64` ids, using [`IdHasher`].
pub type IoMap<V> = HashMap<u64, V, BuildHasherDefault<IdHasher>>;

/// `HashSet` of simulator-allocated `u64` ids, using [`IdHasher`].
pub type IoSet = HashSet<u64, BuildHasherDefault<IdHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_ids_do_not_collide_in_buckets() {
        // Insert a dense id range and read everything back.
        let mut m: IoMap<u64> = IoMap::default();
        for i in 0..10_000u64 {
            m.insert(i, i * 3);
        }
        assert_eq!(m.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(m.get(&i), Some(&(i * 3)));
        }
        for i in 0..10_000u64 {
            assert_eq!(m.remove(&i), Some(i * 3));
        }
        assert!(m.is_empty());
    }

    #[test]
    fn hash_is_deterministic_across_instances() {
        use std::hash::BuildHasher;
        let b: BuildHasherDefault<IdHasher> = BuildHasherDefault::default();
        let h1 = b.hash_one(42u64);
        let b2: BuildHasherDefault<IdHasher> = BuildHasherDefault::default();
        let h2 = b2.hash_one(42u64);
        assert_eq!(h1, h2);
        assert_eq!(h1, 42u64.wrapping_mul(PHI64));
    }

    #[test]
    fn byte_fallback_distinguishes_inputs() {
        use std::hash::BuildHasher;
        let b: BuildHasherDefault<IdHasher> = BuildHasherDefault::default();
        assert_ne!(b.hash_one("alpha"), b.hash_one("beta"));
    }
}
