#![warn(missing_docs)]
//! RoLo — a complete reproduction of *"RoLo: A Rotated Logging Storage
//! Architecture for Enterprise Data Centers"* (ICDCS 2010).
//!
//! This facade re-exports the workspace crates under one roof:
//!
//! * [`sim`] — discrete-event engine (time, event queue, seeded RNG);
//! * [`disk`] — disk service-time and five-state power model;
//! * [`raid`] — RAID10 striping/mirroring geometry;
//! * [`trace`] — MSR trace parsing + calibrated synthetic workloads;
//! * [`core`] — the controllers (RAID10, GRAID, RoLo-P/R/E, PARAID-style
//!   gear shifting), the simulation driver, recovery and rebuild;
//! * [`parity`] — RoLo on RAID5 (the paper's §VII future work);
//! * [`reliability`] — MTTDL models (CTMC solver + closed forms);
//! * [`metrics`] — response-time, phase and timeline statistics;
//! * [`obs`] — structured trace events, sinks, metrics registry and
//!   run profiling (see `DESIGN.md` §9).
//!
//! # Example
//!
//! Run the paper's default 40-disk array under a calibrated src2_2
//! workload for a day:
//!
//! ```
//! use rolo::core::{Scheme, SimConfig};
//! use rolo::sim::Duration;
//!
//! let mut cfg = SimConfig::paper_default(Scheme::RoloP, 4); // 8 disks for the doctest
//! cfg.logger_region = 64 << 20;
//! let profile = rolo::trace::profiles::src2_2();
//! let dur = Duration::from_secs(600);
//! let report = rolo::core::run_scheme(&cfg, profile.generator(dur, 7), dur);
//! assert!(report.consistency.is_ok());
//! ```
//!
//! See `README.md` for the tour, `DESIGN.md` for the architecture and
//! modelling decisions, and `EXPERIMENTS.md` for paper-vs-measured
//! results of every table and figure.

pub use rolo_core as core;
pub use rolo_disk as disk;
pub use rolo_metrics as metrics;
pub use rolo_obs as obs;
pub use rolo_parity as parity;
pub use rolo_raid as raid;
pub use rolo_reliability as reliability;
pub use rolo_sim as sim;
pub use rolo_trace as trace;
