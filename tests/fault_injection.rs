//! Online fault injection through the public facade: whole-disk
//! failures, latent sector errors and transient timeouts injected into
//! live trace replays, with degraded-mode service and background
//! rebuild checked for every scheme.

use rolo::core::{Scheme, SimConfig};
use rolo::reliability::closed_form::{self, mttr_days_to_mu};
use rolo::reliability::{models, monte_carlo};
use rolo::sim::Duration;
use rolo::trace::SyntheticConfig;

/// A small array so rebuilds finish well inside the trace window:
/// 256 MB disks leave a 224 MB data region (≈ 224 rebuild chunks).
fn fault_cfg(scheme: Scheme) -> SimConfig {
    let mut cfg = SimConfig::paper_default(scheme, 4);
    cfg.disk.capacity_bytes = 256 << 20;
    cfg.logger_region = 32 << 20;
    cfg.graid_log_capacity = 64 << 20;
    cfg
}

fn write_heavy(iops: f64) -> SyntheticConfig {
    SyntheticConfig::motivation_write_only(iops)
}

fn read_heavy(iops: f64) -> SyntheticConfig {
    let mut wl = SyntheticConfig::motivation_write_only(iops);
    wl.write_ratio = 0.2;
    wl
}

#[test]
fn mid_run_disk_failure_rebuilds_under_load_for_every_scheme() {
    let dur = Duration::from_secs(600);
    for scheme in Scheme::all() {
        let mut cfg = fault_cfg(scheme);
        cfg.faults.disk_failures = vec![(1, Duration::from_secs(120))];
        let report = rolo::core::run_scheme(&cfg, write_heavy(40.0).generator(dur, 11), dur);
        report
            .consistency
            .as_ref()
            .unwrap_or_else(|e| panic!("{scheme}: {e}"));
        assert_eq!(report.faults.disk_failures, 1, "{scheme}");
        assert_eq!(report.faults.rebuilds_completed, 1, "{scheme}");
        assert_eq!(report.faults.rebuild_durations.len(), 1, "{scheme}");
        assert!(
            report.faults.rebuild_bytes > 0,
            "{scheme}: rebuild copied nothing"
        );
        assert!(
            report.faults.degraded_time > Duration::ZERO,
            "{scheme}: no degraded window recorded"
        );
        // Foreground service continued while the rebuild ran.
        assert!(
            report.degraded_responses.count() > 0,
            "{scheme}: no requests completed while degraded"
        );
        assert!(report.user_requests > 0, "{scheme} served nothing");
    }
}

#[test]
fn graid_log_disk_failure_forces_destage_and_instant_rebuild() {
    let dur = Duration::from_secs(600);
    let mut cfg = fault_cfg(Scheme::Graid);
    // The dedicated log disk sits past the mirrored slots.
    let log_disk = cfg.disk_count() - 1;
    cfg.faults.disk_failures = vec![(log_disk, Duration::from_secs(120))];
    let report = rolo::core::run_scheme(&cfg, write_heavy(40.0).generator(dur, 7), dur);
    report.consistency.as_ref().expect("consistent");
    assert_eq!(report.faults.disk_failures, 1);
    // Only second copies lived there: the replacement needs no data, so
    // the rebuild completes immediately and no read is ever redirected.
    assert_eq!(report.faults.rebuilds_completed, 1);
    assert_eq!(report.faults.rebuild_bytes, 0);
}

#[test]
fn second_failure_on_the_surviving_partner_is_suppressed() {
    let dur = Duration::from_secs(600);
    let mut cfg = fault_cfg(Scheme::Raid10);
    // Disk 5 mirrors disk 1 in a 4-pair array; while pair 1 is degraded
    // its partner's failure would be a double fault (data loss), which
    // the reliability models own — the simulator records and skips it.
    cfg.faults.disk_failures = vec![(1, Duration::from_secs(60)), (5, Duration::from_secs(61))];
    let report = rolo::core::run_scheme(&cfg, write_heavy(40.0).generator(dur, 3), dur);
    report.consistency.as_ref().expect("consistent");
    assert_eq!(report.faults.disk_failures, 1);
    assert_eq!(report.faults.double_faults_suppressed, 1);
    assert_eq!(report.faults.rebuilds_completed, 1);
}

#[test]
fn timeouts_are_retried_with_backoff_and_losses_are_accounted() {
    let dur = Duration::from_secs(600);
    let mut cfg = fault_cfg(Scheme::Raid10);
    cfg.faults.timeout_per_io = 0.3;
    cfg.faults.max_retries = 3;
    cfg.faults.retry_backoff = Duration::from_millis(5);
    let report = rolo::core::run_scheme(&cfg, write_heavy(40.0).generator(dur, 5), dur);
    report.consistency.as_ref().expect("consistent");
    assert!(report.faults.timeouts > 0, "no timeouts drawn");
    assert!(report.faults.retries > 0, "timeouts were not retried");
    // At p = 0.3 a few sub-requests exhaust all three retries…
    assert!(report.faults.io_lost > 0, "expected some exhausted retries");
    // …but every user request still closes its accounting: nothing is
    // silently dropped (the consistency audit above also checks this).
    assert_eq!(
        report.responses.count(),
        report.user_requests,
        "lost sub-requests must not strand user requests"
    );
}

#[test]
fn latent_sector_errors_redirect_reads_to_the_mirror() {
    let dur = Duration::from_secs(600);
    let mut cfg = fault_cfg(Scheme::Raid10);
    cfg.faults.media_error_per_read = 0.1;
    let report = rolo::core::run_scheme(&cfg, read_heavy(40.0).generator(dur, 9), dur);
    report.consistency.as_ref().expect("consistent");
    assert!(report.faults.media_errors > 0, "no media errors drawn");
    assert!(
        report.faults.reads_redirected > 0,
        "media-errored reads must be re-served by the mirror"
    );
    // No disk died, so there is no degraded window or rebuild.
    assert_eq!(report.faults.disk_failures, 0);
    assert_eq!(report.faults.rebuilds_completed, 0);
}

#[test]
fn random_failures_via_seeded_arrivals_are_deterministic() {
    let dur = Duration::from_secs(600);
    let run = |seed: u64| {
        let mut cfg = fault_cfg(Scheme::RoloP);
        // High enough that a failure lands inside 600 s with near
        // certainty (λ·T ≈ 12 expected arrivals; extras suppress).
        cfg.faults.random_failure_rate = 0.02;
        cfg.faults.seed = seed;
        rolo::core::run_scheme(&cfg, write_heavy(40.0).generator(dur, 21), dur)
    };
    let a = run(42);
    let b = run(42);
    assert_eq!(a.faults.disk_failures, b.faults.disk_failures);
    assert_eq!(a.faults.rebuilds_completed, b.faults.rebuilds_completed);
    assert_eq!(a.total_energy_j, b.total_energy_j);
    assert!(a.faults.disk_failures >= 1, "seeded arrivals never fired");
    a.consistency.as_ref().expect("consistent");
}

#[test]
fn monte_carlo_mttdl_matches_ctmc_and_preserves_scheme_ordering() {
    // Exaggerated failure rate keeps the absorption walks short; the
    // ordering result (RoLo-R above RAID10, Table III) is rate-free.
    let lambda = 1e-3; // per disk-hour
    let mu = mttr_days_to_mu(1.0);
    let cases: Vec<(&str, f64, rolo::reliability::MarkovChain)> = vec![
        (
            "RAID10",
            closed_form::raid10_4(lambda, mu),
            models::raid10_4(lambda, mu).expect("chain"),
        ),
        (
            "RoLo-R",
            closed_form::rolo_r_4(lambda, mu),
            models::rolo_r_4(lambda, mu).expect("chain"),
        ),
    ];
    let mut mc_means = Vec::new();
    for (name, cf, chain) in &cases {
        let est = monte_carlo::absorption_time_mc(chain, 0, 4000, 42).expect("mc");
        let rel = (est.mean - cf).abs() / cf;
        assert!(
            rel < 0.15,
            "{name}: MC {} vs closed form {cf} ({rel:.3} off)",
            est.mean
        );
        mc_means.push(est.mean);
    }
    assert!(
        mc_means[1] > mc_means[0],
        "MC MTTDL must rank RoLo-R above RAID10"
    );
    assert!(cases[1].1 > cases[0].1, "closed forms must agree on order");
}

/// A fault plan that exercises the whole silent-corruption surface:
/// power-state-dependent latent-error accrual plus correlated
/// enclosure shocks (DESIGN.md §11).
fn corruption_plan(cfg: &mut SimConfig, seed: u64) {
    cfg.faults.lse_rate_active = 0.02;
    cfg.faults.lse_rate_standby = 0.08;
    cfg.faults.lse_extent = 64 << 10;
    cfg.faults.shock_rate = 1.0 / 120.0;
    cfg.faults.shock_fail_prob = 0.2;
    cfg.faults.shock_enclosure = 2;
    cfg.faults.correlation_window = Duration::from_secs(2);
    cfg.faults.seed = seed;
}

#[test]
fn every_injected_latent_extent_is_classified_for_every_scheme() {
    // The zero-silent-corruption invariant under the full multi-fault
    // matrix: injected == repaired-by-scrub + repaired-on-read +
    // overwritten + lost + still-latent, for every scheme, with the
    // scrub both on and off.
    let dur = Duration::from_secs(240);
    let mut injected_total = 0;
    for scheme in Scheme::all() {
        for (scrub, seed) in [(false, 3u64), (true, 3), (true, 17)] {
            let mut cfg = fault_cfg(scheme);
            cfg.scrub_enabled = scrub;
            corruption_plan(&mut cfg, seed);
            let report = rolo::core::run_scheme(&cfg, read_heavy(40.0).generator(dur, seed), dur);
            report
                .consistency
                .as_ref()
                .unwrap_or_else(|e| panic!("{scheme} scrub={scrub}: {e}"));
            let f = &report.faults;
            assert!(
                f.lse_conserved(),
                "{scheme} scrub={scrub} seed={seed}: injected {} but classified {}",
                f.lse_injected,
                f.lse_classified()
            );
            injected_total += f.lse_injected;
        }
    }
    assert!(injected_total > 0, "the corruption plan injected nothing");
}

#[test]
fn scrubbing_shrinks_the_latent_population_without_waking_disks() {
    // RoLo-E is the flavor whose spun-down disks accrue standby-rate
    // latent errors; the power-aware scrub must repair extents on the
    // disks that are up without spinning up the ones that are down.
    let dur = Duration::from_secs(240);
    let run = |scrub: bool| {
        let mut cfg = fault_cfg(Scheme::RoloE);
        cfg.scrub_enabled = scrub;
        // 8 MB/s of scrub bandwidth so a 224 MB data region is fully
        // scanned well inside the window despite power-down gaps.
        cfg.scrub_chunk = 4 << 20;
        corruption_plan(&mut cfg, 5);
        rolo::core::run_scheme(&cfg, write_heavy(40.0).generator(dur, 5), dur)
    };
    let off = run(false);
    let on = run(true);
    off.consistency.as_ref().expect("consistent");
    on.consistency.as_ref().expect("consistent");
    assert!(
        on.faults.lse_repaired_by_scrub > 0,
        "scrub-on run repaired nothing by scrub"
    );
    assert!(
        on.faults.scrub_passes > 0,
        "scrub never completed a pass over a data region"
    );
    assert!(
        on.faults.lse_latent_at_end < off.faults.lse_latent_at_end,
        "scrub did not shrink the end-of-run latent population ({} vs {})",
        on.faults.lse_latent_at_end,
        off.faults.lse_latent_at_end
    );
    // The scrub piggybacks on disks that are already up: it must not
    // add spin cycles beyond the workload's own.
    assert!(
        on.spin_cycles <= off.spin_cycles,
        "scrubbing added spin cycles ({} vs {}) — it woke disks",
        on.spin_cycles,
        off.spin_cycles
    );
}

#[test]
fn corruption_and_scrub_runs_are_reproducible_byte_for_byte() {
    // Determinism under the full new machinery: identical configs give
    // byte-identical deterministic reports, with the scrub off and on.
    let dur = Duration::from_secs(240);
    let run = |scrub: bool| {
        let mut cfg = fault_cfg(Scheme::RoloR);
        cfg.scrub_enabled = scrub;
        corruption_plan(&mut cfg, 13);
        rolo::core::run_scheme(&cfg, write_heavy(40.0).generator(dur, 13), dur)
    };
    for scrub in [false, true] {
        let a = run(scrub);
        let b = run(scrub);
        assert_eq!(
            a.deterministic_json(),
            b.deterministic_json(),
            "scrub={scrub}: identical runs diverged"
        );
        a.consistency.as_ref().expect("consistent");
    }
}
