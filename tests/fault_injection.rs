//! Online fault injection through the public facade: whole-disk
//! failures, latent sector errors and transient timeouts injected into
//! live trace replays, with degraded-mode service and background
//! rebuild checked for every scheme.

use rolo::core::{Scheme, SimConfig};
use rolo::reliability::closed_form::{self, mttr_days_to_mu};
use rolo::reliability::{models, monte_carlo};
use rolo::sim::Duration;
use rolo::trace::SyntheticConfig;

/// A small array so rebuilds finish well inside the trace window:
/// 256 MB disks leave a 224 MB data region (≈ 224 rebuild chunks).
fn fault_cfg(scheme: Scheme) -> SimConfig {
    let mut cfg = SimConfig::paper_default(scheme, 4);
    cfg.disk.capacity_bytes = 256 << 20;
    cfg.logger_region = 32 << 20;
    cfg.graid_log_capacity = 64 << 20;
    cfg
}

fn write_heavy(iops: f64) -> SyntheticConfig {
    SyntheticConfig::motivation_write_only(iops)
}

fn read_heavy(iops: f64) -> SyntheticConfig {
    let mut wl = SyntheticConfig::motivation_write_only(iops);
    wl.write_ratio = 0.2;
    wl
}

#[test]
fn mid_run_disk_failure_rebuilds_under_load_for_every_scheme() {
    let dur = Duration::from_secs(600);
    for scheme in Scheme::all() {
        let mut cfg = fault_cfg(scheme);
        cfg.faults.disk_failures = vec![(1, Duration::from_secs(120))];
        let report = rolo::core::run_scheme(&cfg, write_heavy(40.0).generator(dur, 11), dur);
        report
            .consistency
            .as_ref()
            .unwrap_or_else(|e| panic!("{scheme}: {e}"));
        assert_eq!(report.faults.disk_failures, 1, "{scheme}");
        assert_eq!(report.faults.rebuilds_completed, 1, "{scheme}");
        assert_eq!(report.faults.rebuild_durations.len(), 1, "{scheme}");
        assert!(
            report.faults.rebuild_bytes > 0,
            "{scheme}: rebuild copied nothing"
        );
        assert!(
            report.faults.degraded_time > Duration::ZERO,
            "{scheme}: no degraded window recorded"
        );
        // Foreground service continued while the rebuild ran.
        assert!(
            report.degraded_responses.count() > 0,
            "{scheme}: no requests completed while degraded"
        );
        assert!(report.user_requests > 0, "{scheme} served nothing");
    }
}

#[test]
fn graid_log_disk_failure_forces_destage_and_instant_rebuild() {
    let dur = Duration::from_secs(600);
    let mut cfg = fault_cfg(Scheme::Graid);
    // The dedicated log disk sits past the mirrored slots.
    let log_disk = cfg.disk_count() - 1;
    cfg.faults.disk_failures = vec![(log_disk, Duration::from_secs(120))];
    let report = rolo::core::run_scheme(&cfg, write_heavy(40.0).generator(dur, 7), dur);
    report.consistency.as_ref().expect("consistent");
    assert_eq!(report.faults.disk_failures, 1);
    // Only second copies lived there: the replacement needs no data, so
    // the rebuild completes immediately and no read is ever redirected.
    assert_eq!(report.faults.rebuilds_completed, 1);
    assert_eq!(report.faults.rebuild_bytes, 0);
}

#[test]
fn second_failure_on_the_surviving_partner_is_suppressed() {
    let dur = Duration::from_secs(600);
    let mut cfg = fault_cfg(Scheme::Raid10);
    // Disk 5 mirrors disk 1 in a 4-pair array; while pair 1 is degraded
    // its partner's failure would be a double fault (data loss), which
    // the reliability models own — the simulator records and skips it.
    cfg.faults.disk_failures = vec![(1, Duration::from_secs(60)), (5, Duration::from_secs(61))];
    let report = rolo::core::run_scheme(&cfg, write_heavy(40.0).generator(dur, 3), dur);
    report.consistency.as_ref().expect("consistent");
    assert_eq!(report.faults.disk_failures, 1);
    assert_eq!(report.faults.double_faults_suppressed, 1);
    assert_eq!(report.faults.rebuilds_completed, 1);
}

#[test]
fn timeouts_are_retried_with_backoff_and_losses_are_accounted() {
    let dur = Duration::from_secs(600);
    let mut cfg = fault_cfg(Scheme::Raid10);
    cfg.faults.timeout_per_io = 0.3;
    cfg.faults.max_retries = 3;
    cfg.faults.retry_backoff = Duration::from_millis(5);
    let report = rolo::core::run_scheme(&cfg, write_heavy(40.0).generator(dur, 5), dur);
    report.consistency.as_ref().expect("consistent");
    assert!(report.faults.timeouts > 0, "no timeouts drawn");
    assert!(report.faults.retries > 0, "timeouts were not retried");
    // At p = 0.3 a few sub-requests exhaust all three retries…
    assert!(report.faults.io_lost > 0, "expected some exhausted retries");
    // …but every user request still closes its accounting: nothing is
    // silently dropped (the consistency audit above also checks this).
    assert_eq!(
        report.responses.count(),
        report.user_requests,
        "lost sub-requests must not strand user requests"
    );
}

#[test]
fn latent_sector_errors_redirect_reads_to_the_mirror() {
    let dur = Duration::from_secs(600);
    let mut cfg = fault_cfg(Scheme::Raid10);
    cfg.faults.media_error_per_read = 0.1;
    let report = rolo::core::run_scheme(&cfg, read_heavy(40.0).generator(dur, 9), dur);
    report.consistency.as_ref().expect("consistent");
    assert!(report.faults.media_errors > 0, "no media errors drawn");
    assert!(
        report.faults.reads_redirected > 0,
        "media-errored reads must be re-served by the mirror"
    );
    // No disk died, so there is no degraded window or rebuild.
    assert_eq!(report.faults.disk_failures, 0);
    assert_eq!(report.faults.rebuilds_completed, 0);
}

#[test]
fn random_failures_via_seeded_arrivals_are_deterministic() {
    let dur = Duration::from_secs(600);
    let run = |seed: u64| {
        let mut cfg = fault_cfg(Scheme::RoloP);
        // High enough that a failure lands inside 600 s with near
        // certainty (λ·T ≈ 12 expected arrivals; extras suppress).
        cfg.faults.random_failure_rate = 0.02;
        cfg.faults.seed = seed;
        rolo::core::run_scheme(&cfg, write_heavy(40.0).generator(dur, 21), dur)
    };
    let a = run(42);
    let b = run(42);
    assert_eq!(a.faults.disk_failures, b.faults.disk_failures);
    assert_eq!(a.faults.rebuilds_completed, b.faults.rebuilds_completed);
    assert_eq!(a.total_energy_j, b.total_energy_j);
    assert!(a.faults.disk_failures >= 1, "seeded arrivals never fired");
    a.consistency.as_ref().expect("consistent");
}

#[test]
fn monte_carlo_mttdl_matches_ctmc_and_preserves_scheme_ordering() {
    // Exaggerated failure rate keeps the absorption walks short; the
    // ordering result (RoLo-R above RAID10, Table III) is rate-free.
    let lambda = 1e-3; // per disk-hour
    let mu = mttr_days_to_mu(1.0);
    let cases: Vec<(&str, f64, rolo::reliability::MarkovChain)> = vec![
        (
            "RAID10",
            closed_form::raid10_4(lambda, mu),
            models::raid10_4(lambda, mu).expect("chain"),
        ),
        (
            "RoLo-R",
            closed_form::rolo_r_4(lambda, mu),
            models::rolo_r_4(lambda, mu).expect("chain"),
        ),
    ];
    let mut mc_means = Vec::new();
    for (name, cf, chain) in &cases {
        let est = monte_carlo::absorption_time_mc(chain, 0, 4000, 42).expect("mc");
        let rel = (est.mean - cf).abs() / cf;
        assert!(
            rel < 0.15,
            "{name}: MC {} vs closed form {cf} ({rel:.3} off)",
            est.mean
        );
        mc_means.push(est.mean);
    }
    assert!(
        mc_means[1] > mc_means[0],
        "MC MTTDL must rank RoLo-R above RAID10"
    );
    assert!(cases[1].1 > cases[0].1, "closed forms must agree on order");
}
