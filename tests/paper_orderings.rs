//! Golden orderings from the paper's evaluation, locked down on seeded
//! synthetic traces so regressions in any controller surface as a test
//! failure rather than a silently shifted figure:
//!
//! * RoLo-P responds no slower than GRAID on a write-dominated trace
//!   (Fig. 9: decentralized destaging beats the centralized log disk);
//! * RoLo-E consumes no more energy than every other scheme (Table V);
//! * RoLo-R keeps three copies of every logged write (§III-B2): one
//!   primary in place plus two log appends, and never falls back to
//!   direct writes on an uncontended logger.

use rolo::core::{Scheme, SimConfig, SimReport};
use rolo::sim::{Duration, SimTime};
use rolo::trace::{ReqKind, SyntheticConfig, TraceRecord};

fn small_cfg(scheme: Scheme) -> SimConfig {
    let mut cfg = SimConfig::paper_default(scheme, 4);
    cfg.logger_region = 64 << 20;
    cfg.graid_log_capacity = 96 << 20;
    cfg
}

fn run_write_only(scheme: Scheme, iops: f64, secs: u64, seed: u64) -> SimReport {
    let dur = Duration::from_secs(secs);
    let wl = SyntheticConfig::motivation_write_only(iops);
    let report = rolo::core::run_scheme(&small_cfg(scheme), wl.generator(dur, seed), dur);
    report
        .consistency
        .as_ref()
        .unwrap_or_else(|e| panic!("{scheme}: {e}"));
    assert!(report.user_requests > 0, "{scheme} served nothing");
    report
}

#[test]
fn rolo_p_responds_no_slower_than_graid() {
    let rolo_p = run_write_only(Scheme::RoloP, 50.0, 1800, 7);
    let graid = run_write_only(Scheme::Graid, 50.0, 1800, 7);
    assert!(
        rolo_p.mean_response_ms() <= graid.mean_response_ms(),
        "RoLo-P mean response {:.3} ms must not exceed GRAID's {:.3} ms",
        rolo_p.mean_response_ms(),
        graid.mean_response_ms()
    );
}

#[test]
fn rolo_e_is_cheapest_on_energy() {
    let roloe = run_write_only(Scheme::RoloE, 30.0, 1800, 11);
    for scheme in [Scheme::Raid10, Scheme::Graid, Scheme::RoloP, Scheme::RoloR] {
        let other = run_write_only(scheme, 30.0, 1800, 11);
        assert!(
            roloe.total_energy_j <= other.total_energy_j,
            "RoLo-E energy {:.0} J must not exceed {scheme}'s {:.0} J",
            roloe.total_energy_j,
            other.total_energy_j
        );
    }
}

#[test]
fn rolo_r_keeps_three_copies_of_every_logged_write() {
    // Hand-built write-only trace so the total user-written volume is
    // exact: 400 writes x 64 KiB, paced well under the array's limit.
    let bytes_per_write = 64 * 1024u64;
    let writes = 400u64;
    let records: Vec<TraceRecord> = (0..writes)
        .map(|i| {
            TraceRecord::new(
                SimTime::from_millis(i * 50),
                ReqKind::Write,
                (i * 2 * bytes_per_write) % (1 << 30),
                bytes_per_write,
            )
        })
        .collect();
    let dur = Duration::from_secs(60);
    let report = rolo::core::run_scheme(&small_cfg(Scheme::RoloR), records, dur);
    report.consistency.as_ref().expect("consistent");
    assert_eq!(report.user_requests, writes);
    assert_eq!(
        report.policy.direct_writes, 0,
        "an uncontended RoLo-R logger must log every write"
    );
    let written = writes * bytes_per_write;
    assert!(
        report.policy.log_appended_bytes >= 2 * written,
        "RoLo-R logged {} bytes for {} user bytes — fewer than two log \
         copies per write",
        report.policy.log_appended_bytes,
        written
    );
    // The observability export carries the same counters.
    let metric = |name: &str| {
        report
            .metrics
            .get(name)
            .unwrap_or_else(|| panic!("metric {name} missing"))
            .value
    };
    assert_eq!(
        metric("policy.log_appended_bytes") as u64,
        report.policy.log_appended_bytes
    );
    assert_eq!(metric("policy.direct_writes") as u64, 0);
}
