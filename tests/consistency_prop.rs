//! Property tests of the master invariant: after any workload drains,
//! mirrors are consistent and logging space is fully reclaimed — for
//! every scheme, across randomized workload shapes.

use proptest::prelude::*;
use rolo::core::{Scheme, SimConfig};
use rolo::sim::Duration;
use rolo::trace::{Burstiness, SizeDist, SyntheticConfig};

fn workload(iops: f64, write_ratio: f64, req_kib: u64, seq: f64, bursty: bool) -> SyntheticConfig {
    SyntheticConfig {
        iops,
        write_ratio,
        read_size: SizeDist::Fixed(req_kib * 1024),
        write_size: SizeDist::Fixed(req_kib * 1024),
        sequential_fraction: seq,
        write_footprint: 512 << 20,
        read_footprint: 1 << 30,
        read_hot_fraction: 0.7,
        hot_set_bytes: 4 << 20,
        burstiness: if bursty {
            Burstiness::Bursty {
                on_fraction: 0.2,
                mean_on_secs: 10.0,
            }
        } else {
            Burstiness::Smooth
        },
        batch_mean: 1.0,
        align: 4096,
    }
}

fn check(scheme: Scheme, wl: &SyntheticConfig, seed: u64) -> Result<(), TestCaseError> {
    let mut cfg = SimConfig::paper_default(scheme, 3);
    cfg.logger_region = 32 << 20;
    cfg.graid_log_capacity = 48 << 20;
    let dur = Duration::from_secs(120);
    let report = rolo::core::run_scheme(&cfg, wl.generator(dur, seed), dur);
    prop_assert!(
        report.consistency.is_ok(),
        "{scheme}: {:?}",
        report.consistency
    );
    prop_assert!(report.drained_at >= report.trace_duration);
    // Response stats cover exactly the user requests.
    prop_assert_eq!(
        report.responses.count(),
        report.read_responses.count() + report.write_responses.count()
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        max_shrink_iters: 0,
    })]

    #[test]
    fn raid10_always_consistent(
        iops in 5.0f64..150.0,
        wr in 0.1f64..1.0,
        kib in prop::sample::select(vec![4u64, 16, 64, 256]),
        seq in 0.0f64..1.0,
        bursty in any::<bool>(),
        seed in 0u64..1000,
    ) {
        check(Scheme::Raid10, &workload(iops, wr, kib, seq, bursty), seed)?;
    }

    #[test]
    fn graid_always_consistent(
        iops in 5.0f64..150.0,
        wr in 0.1f64..1.0,
        kib in prop::sample::select(vec![4u64, 16, 64, 256]),
        seq in 0.0f64..1.0,
        bursty in any::<bool>(),
        seed in 0u64..1000,
    ) {
        check(Scheme::Graid, &workload(iops, wr, kib, seq, bursty), seed)?;
    }

    #[test]
    fn rolo_p_always_consistent(
        iops in 5.0f64..150.0,
        wr in 0.1f64..1.0,
        kib in prop::sample::select(vec![4u64, 16, 64, 256]),
        seq in 0.0f64..1.0,
        bursty in any::<bool>(),
        seed in 0u64..1000,
    ) {
        check(Scheme::RoloP, &workload(iops, wr, kib, seq, bursty), seed)?;
    }

    #[test]
    fn rolo_r_always_consistent(
        iops in 5.0f64..150.0,
        wr in 0.1f64..1.0,
        kib in prop::sample::select(vec![4u64, 16, 64, 256]),
        seq in 0.0f64..1.0,
        bursty in any::<bool>(),
        seed in 0u64..1000,
    ) {
        check(Scheme::RoloR, &workload(iops, wr, kib, seq, bursty), seed)?;
    }

    #[test]
    fn rolo_e_always_consistent(
        iops in 5.0f64..150.0,
        wr in 0.1f64..1.0,
        kib in prop::sample::select(vec![4u64, 16, 64, 256]),
        seq in 0.0f64..1.0,
        bursty in any::<bool>(),
        seed in 0u64..1000,
    ) {
        check(Scheme::RoloE, &workload(iops, wr, kib, seq, bursty), seed)?;
    }
}

mod parity {
    use super::*;
    use rolo_parity::{Raid5Geometry, Raid5Policy, Rolo5Policy};

    fn parity_check(nvram: bool, wl: &SyntheticConfig, seed: u64) -> Result<(), TestCaseError> {
        let mut cfg = SimConfig::paper_default(Scheme::Raid10, 3);
        cfg.logger_region = 32 << 20;
        let geo = Raid5Geometry::new(cfg.disk_count(), cfg.stripe_unit, cfg.data_region());
        let dur = Duration::from_secs(120);
        let mut p = Rolo5Policy::new(
            geo.clone(),
            cfg.data_region(),
            cfg.logger_region,
            0.02,
            64 * 1024,
        );
        if nvram {
            p.enable_nvram(1 << 20);
        }
        let report = rolo::core::run_trace(&cfg, wl.generator(dur, seed), p, dur);
        prop_assert!(
            report.consistency.is_ok(),
            "rolo5: {:?}",
            report.consistency
        );
        let base = rolo::core::run_trace(&cfg, wl.generator(dur, seed), Raid5Policy::new(geo), dur);
        prop_assert!(base.consistency.is_ok(), "raid5: {:?}", base.consistency);
        prop_assert_eq!(base.user_requests, report.user_requests);
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig {
            cases: 10,
            max_shrink_iters: 0,
        })]

        #[test]
        fn rolo5_and_raid5_always_consistent(
            iops in 5.0f64..200.0,
            wr in 0.1f64..1.0,
            kib in prop::sample::select(vec![4u64, 16, 64]),
            nvram in any::<bool>(),
            seed in 0u64..1000,
        ) {
            parity_check(nvram, &workload(iops, wr, kib, 0.3, false), seed)?;
        }
    }
}
