//! Property tests of the §III-C recovery planner and of
//! recovery-by-replay (DESIGN.md §10): for every scheme, array width
//! and live-state shape, the plan must be well-formed — disjoint
//! wake/silent sets, no self-recovery, never more participants than
//! the array holds — and killing a journal-bearing disk at a
//! randomized crash point must trigger a replay whose reconstructed
//! dirty maps match the controller's state exactly.

use proptest::prelude::*;
use rolo::core::{recovery_plan, Scheme, SimConfig};
use rolo::obs::{RingSink, SimEvent};
use rolo::raid::ArrayGeometry;
use rolo::sim::Duration;
use rolo::trace::SyntheticConfig;

fn check_plan(
    scheme: Scheme,
    pairs: usize,
    failed: usize,
    logger_pair: usize,
    recent: &[usize],
) -> Result<(), TestCaseError> {
    let geo = ArrayGeometry::new(pairs, 64 * 1024, 1 << 30, 1 << 30).expect("valid geometry");
    let array = match scheme {
        Scheme::Graid => geo.disks() + 1, // dedicated log disk
        _ => geo.disks(),
    };
    let plan = recovery_plan(scheme, &geo, failed, logger_pair, recent);
    prop_assert_eq!(plan.failed, failed);
    for &d in plan.wake.iter().chain(plan.silent.iter()) {
        prop_assert!(d < array, "{scheme}: disk {d} out of range {array}");
        prop_assert!(d != failed, "{scheme}: plan recovers from the failed disk");
    }
    for &w in &plan.wake {
        prop_assert!(
            !plan.silent.contains(&w),
            "{scheme}: disk {w} both wakes and serves silently"
        );
    }
    let mut wake = plan.wake.clone();
    wake.sort_unstable();
    wake.dedup();
    prop_assert_eq!(wake.len(), plan.wake.len(), "{scheme}: duplicate wake");
    let mut silent = plan.silent.clone();
    silent.sort_unstable();
    silent.dedup();
    prop_assert_eq!(
        silent.len(),
        plan.silent.len(),
        "{scheme}: duplicate silent"
    );
    prop_assert!(
        plan.disks_involved() < array,
        "{scheme}: {} participants in a {array}-disk array (failed disk excluded)",
        plan.disks_involved()
    );
    prop_assert!(
        plan.disks_involved() >= 1 || plan.redundancy_only,
        "{scheme}: data-losing failure with an empty recovery set"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        max_shrink_iters: 0,
    })]

    #[test]
    fn recovery_plans_are_well_formed(
        pairs in 2usize..20,
        failed_frac in 0u64..1000,
        logger_frac in 0u64..1000,
        recent_a in 0u64..1000,
        recent_b in 0u64..1000,
        scheme_idx in 0usize..5,
    ) {
        let scheme = Scheme::all()[scheme_idx];
        // GRAID's log disk is a valid failure target past the mirrors.
        let disks = match scheme {
            Scheme::Graid => 2 * pairs + 1,
            _ => 2 * pairs,
        };
        let failed = (failed_frac as usize * disks / 1000).min(disks - 1);
        let logger_pair = (logger_frac as usize * pairs / 1000).min(pairs - 1);
        let recent = [
            (recent_a as usize * pairs / 1000).min(pairs - 1),
            (recent_b as usize * pairs / 1000).min(pairs - 1),
        ];
        check_plan(scheme, pairs, failed, logger_pair, &recent)?;
    }

    #[test]
    fn recovery_plans_cover_every_disk_exhaustively(
        pairs in 2usize..8,
        logger_pair_seed in 0u64..1000,
    ) {
        // Sweep every failure target (not just sampled ones) so corner
        // slots — pair 0, the last mirror, GRAID's log disk — are hit on
        // every run.
        for scheme in Scheme::all() {
            let disks = match scheme {
                Scheme::Graid => 2 * pairs + 1,
                _ => 2 * pairs,
            };
            let logger_pair = (logger_pair_seed as usize * pairs / 1000).min(pairs - 1);
            for failed in 0..disks {
                check_plan(scheme, pairs, failed, logger_pair, &[logger_pair])?;
            }
        }
    }
}

proptest! {
    // Each case is a full trace-driven simulation: keep the sample
    // small; the `log_recovery` smoke bin sweeps the dense crash matrix.
    #![proptest_config(ProptestConfig {
        cases: 6,
        max_shrink_iters: 0,
    })]

    /// Randomized crash-point replay: kill a journal-bearing disk at a
    /// random instant under a write-heavy load and require (a) a replay
    /// pass ran and (b) it reconstructed every covered pair's dirty map
    /// byte-identically to the controller's NVRAM state
    /// (`policy.replay_divergence == 0`).
    ///
    /// The in-run comparison is transitively a comparison against the
    /// uncrashed reference: the fault injector's pinned failure at time
    /// T perturbs nothing before T (the event stream up to T is
    /// byte-identical with and without the fault scheduled), so the
    /// controller's pre-crash dirty maps — which the replayed maps must
    /// equal — are exactly the uncrashed run's maps at T.
    #[test]
    fn crash_point_replay_reconstructs_dirty_maps(
        scheme_idx in 0usize..4,
        disk_seed in 0usize..1000,
        crash_secs in 60u64..300,
        trace_seed in 0u64..1000,
    ) {
        let scheme = [Scheme::RoloP, Scheme::RoloR, Scheme::RoloE, Scheme::Graid][scheme_idx];
        let pairs = 4usize;
        let mut cfg = SimConfig::paper_default(scheme, pairs);
        cfg.disk.capacity_bytes = 256 << 20;
        cfg.logger_region = 32 << 20;
        cfg.graid_log_capacity = 64 << 20;
        // A journal-bearing slot: RoLo-P journals its mirrors, RoLo-R
        // and RoLo-E every mirrored disk, GRAID only the log disk.
        let disk = match scheme {
            Scheme::RoloP => pairs + disk_seed % pairs,
            Scheme::RoloR | Scheme::RoloE => disk_seed % (2 * pairs),
            _ => 2 * pairs,
        };
        cfg.faults.disk_failures = vec![(disk, Duration::from_secs(crash_secs))];
        let dur = Duration::from_secs(400);
        let wl = SyntheticConfig::motivation_write_only(40.0);
        let report = rolo::core::run_scheme(&cfg, wl.generator(dur, trace_seed), dur);
        report
            .consistency
            .as_ref()
            .unwrap_or_else(|e| panic!("{scheme}: {e}"));
        let metric = |name: &str| report.metrics.get(name).map(|m| m.value).unwrap_or(0.0);
        prop_assert_eq!(report.faults.disk_failures, 1, "{}: fault never fired", scheme);
        prop_assert!(
            metric("policy.log_replays") >= 1.0,
            "{scheme}: killing journal disk {disk} ran no replay"
        );
        prop_assert_eq!(
            metric("policy.replay_divergence"), 0.0,
            "{}: replayed dirty maps diverged from the controller's", scheme
        );
    }
}

/// The crash-matrix config shared by the lifecycle-targeted crashes.
fn crash_cfg(scheme: Scheme) -> SimConfig {
    let mut cfg = SimConfig::paper_default(scheme, 4);
    cfg.disk.capacity_bytes = 256 << 20;
    cfg.logger_region = 32 << 20;
    cfg.graid_log_capacity = 64 << 20;
    cfg
}

/// Probes an uncrashed run of `scheme` and returns the
/// `(micros, disk)` instants of every segment compaction and archival
/// inside the crashable window. The fault injector's pinned failure
/// perturbs nothing before it fires, so these instants land at exactly
/// the same journal state in the crashed run.
type Instants = Vec<(u64, usize)>;

fn lifecycle_instants(scheme: Scheme, trace_seed: u64) -> (Instants, Instants) {
    let cfg = crash_cfg(scheme);
    let dur = Duration::from_secs(400);
    let wl = SyntheticConfig::motivation_write_only(40.0);
    let (report, mut sink) = rolo::core::run_scheme_with_sink(
        &cfg,
        wl.generator(dur, trace_seed),
        dur,
        Box::new(RingSink::new(1 << 21)),
    );
    report.consistency.as_ref().expect("probe run consistent");
    let mut compacted = Vec::new();
    let mut archived = Vec::new();
    for ev in sink.drain() {
        let at = ev.at.as_micros();
        if !(30_000_000..=350_000_000).contains(&at) {
            continue;
        }
        match ev.event {
            SimEvent::SegmentCompacted { disk, .. } => compacted.push((at, disk)),
            SimEvent::SegmentArchived { disk, .. } => archived.push((at, disk)),
            _ => {}
        }
    }
    (compacted, archived)
}

/// Runs the crash at `(micros ± jitter, disk)` and requires a clean
/// replay: the fault fired, a replay pass ran, and the reconstructed
/// dirty maps match the controller's byte-for-byte.
fn crash_at(
    scheme: Scheme,
    at_micros: u64,
    disk: usize,
    jitter_us: u64,
    trace_seed: u64,
) -> Result<(), TestCaseError> {
    // Jitter straddles the instant: half the draws land just before
    // (mid-operation), half just after (freshly mutated journal state).
    let crash = at_micros
        .saturating_add(jitter_us)
        .saturating_sub(100_000)
        .max(30_000_000);
    let mut cfg = crash_cfg(scheme);
    cfg.faults.disk_failures = vec![(disk, Duration::from_micros(crash))];
    let dur = Duration::from_secs(400);
    let wl = SyntheticConfig::motivation_write_only(40.0);
    let report = rolo::core::run_scheme(&cfg, wl.generator(dur, trace_seed), dur);
    report
        .consistency
        .as_ref()
        .unwrap_or_else(|e| panic!("{scheme}: {e}"));
    let metric = |name: &str| report.metrics.get(name).map(|m| m.value).unwrap_or(0.0);
    prop_assert_eq!(
        report.faults.disk_failures,
        1,
        "{}: fault never fired",
        scheme
    );
    prop_assert!(
        metric("policy.log_replays") >= 1.0,
        "{scheme}: killing journal disk {disk} at {crash}us ran no replay"
    );
    prop_assert_eq!(
        metric("policy.replay_divergence"),
        0.0,
        "{}: replayed dirty maps diverged after a mid-lifecycle crash",
        scheme
    );
    Ok(())
}

proptest! {
    // Each case probes one uncrashed run, then replays it with the
    // crash pinned to a lifecycle instant: two full simulations.
    #![proptest_config(ProptestConfig {
        cases: 4,
        max_shrink_iters: 0,
    })]

    /// Mid-compaction crash: kill the journal disk at (or ±100 ms
    /// around) a segment-compaction instant, when relocated records
    /// have just re-committed and their sources are superseded — the
    /// replay must still reconstruct the dirty maps exactly. RoLo-E
    /// never compacts under this workload, so the sweep covers the two
    /// flavors that do.
    #[test]
    fn crash_mid_compaction_replays_exactly(
        scheme_idx in 0usize..2,
        pick in 0usize..1000,
        jitter_us in 0u64..200_000,
        trace_seed in 0u64..4,
    ) {
        let scheme = [Scheme::RoloP, Scheme::RoloR][scheme_idx];
        let (compacted, _) = lifecycle_instants(scheme, trace_seed);
        prop_assert!(
            !compacted.is_empty(),
            "{scheme}: probe run never compacted — the crash point is untestable"
        );
        let (at, disk) = compacted[pick % compacted.len()];
        crash_at(scheme, at, disk, jitter_us, trace_seed)?;
    }

    /// Mid-archival crash: kill the journal disk at (or ±100 ms around)
    /// a segment-archival instant, when a sealed segment has just moved
    /// to an archive frame pending TTL retirement.
    #[test]
    fn crash_mid_archival_replays_exactly(
        scheme_idx in 0usize..3,
        pick in 0usize..1000,
        jitter_us in 0u64..200_000,
        trace_seed in 0u64..4,
    ) {
        let scheme = [Scheme::RoloP, Scheme::RoloR, Scheme::RoloE][scheme_idx];
        let (_, archived) = lifecycle_instants(scheme, trace_seed);
        prop_assert!(
            !archived.is_empty(),
            "{scheme}: probe run never archived — the crash point is untestable"
        );
        let (at, disk) = archived[pick % archived.len()];
        crash_at(scheme, at, disk, jitter_us, trace_seed)?;
    }
}
