//! Property tests of the §III-C recovery planner: for every scheme,
//! array width and live-state shape, the plan must be well-formed —
//! disjoint wake/silent sets, no self-recovery, and never more
//! participants than the array holds.

use proptest::prelude::*;
use rolo::core::{recovery_plan, Scheme};
use rolo::raid::ArrayGeometry;

fn check_plan(
    scheme: Scheme,
    pairs: usize,
    failed: usize,
    logger_pair: usize,
    recent: &[usize],
) -> Result<(), TestCaseError> {
    let geo = ArrayGeometry::new(pairs, 64 * 1024, 1 << 30, 1 << 30).expect("valid geometry");
    let array = match scheme {
        Scheme::Graid => geo.disks() + 1, // dedicated log disk
        _ => geo.disks(),
    };
    let plan = recovery_plan(scheme, &geo, failed, logger_pair, recent);
    prop_assert_eq!(plan.failed, failed);
    for &d in plan.wake.iter().chain(plan.silent.iter()) {
        prop_assert!(d < array, "{scheme}: disk {d} out of range {array}");
        prop_assert!(d != failed, "{scheme}: plan recovers from the failed disk");
    }
    for &w in &plan.wake {
        prop_assert!(
            !plan.silent.contains(&w),
            "{scheme}: disk {w} both wakes and serves silently"
        );
    }
    let mut wake = plan.wake.clone();
    wake.sort_unstable();
    wake.dedup();
    prop_assert_eq!(wake.len(), plan.wake.len(), "{scheme}: duplicate wake");
    let mut silent = plan.silent.clone();
    silent.sort_unstable();
    silent.dedup();
    prop_assert_eq!(
        silent.len(),
        plan.silent.len(),
        "{scheme}: duplicate silent"
    );
    prop_assert!(
        plan.disks_involved() < array,
        "{scheme}: {} participants in a {array}-disk array (failed disk excluded)",
        plan.disks_involved()
    );
    prop_assert!(
        plan.disks_involved() >= 1 || plan.redundancy_only,
        "{scheme}: data-losing failure with an empty recovery set"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        max_shrink_iters: 0,
    })]

    #[test]
    fn recovery_plans_are_well_formed(
        pairs in 2usize..20,
        failed_frac in 0u64..1000,
        logger_frac in 0u64..1000,
        recent_a in 0u64..1000,
        recent_b in 0u64..1000,
        scheme_idx in 0usize..5,
    ) {
        let scheme = Scheme::all()[scheme_idx];
        // GRAID's log disk is a valid failure target past the mirrors.
        let disks = match scheme {
            Scheme::Graid => 2 * pairs + 1,
            _ => 2 * pairs,
        };
        let failed = (failed_frac as usize * disks / 1000).min(disks - 1);
        let logger_pair = (logger_frac as usize * pairs / 1000).min(pairs - 1);
        let recent = [
            (recent_a as usize * pairs / 1000).min(pairs - 1),
            (recent_b as usize * pairs / 1000).min(pairs - 1),
        ];
        check_plan(scheme, pairs, failed, logger_pair, &recent)?;
    }

    #[test]
    fn recovery_plans_cover_every_disk_exhaustively(
        pairs in 2usize..8,
        logger_pair_seed in 0u64..1000,
    ) {
        // Sweep every failure target (not just sampled ones) so corner
        // slots — pair 0, the last mirror, GRAID's log disk — are hit on
        // every run.
        for scheme in Scheme::all() {
            let disks = match scheme {
                Scheme::Graid => 2 * pairs + 1,
                _ => 2 * pairs,
            };
            let logger_pair = (logger_pair_seed as usize * pairs / 1000).min(pairs - 1);
            for failed in 0..disks {
                check_plan(scheme, pairs, failed, logger_pair, &[logger_pair])?;
            }
        }
    }
}
