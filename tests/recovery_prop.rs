//! Property tests of the §III-C recovery planner and of
//! recovery-by-replay (DESIGN.md §10): for every scheme, array width
//! and live-state shape, the plan must be well-formed — disjoint
//! wake/silent sets, no self-recovery, never more participants than
//! the array holds — and killing a journal-bearing disk at a
//! randomized crash point must trigger a replay whose reconstructed
//! dirty maps match the controller's state exactly.

use proptest::prelude::*;
use rolo::core::{recovery_plan, Scheme, SimConfig};
use rolo::raid::ArrayGeometry;
use rolo::sim::Duration;
use rolo::trace::SyntheticConfig;

fn check_plan(
    scheme: Scheme,
    pairs: usize,
    failed: usize,
    logger_pair: usize,
    recent: &[usize],
) -> Result<(), TestCaseError> {
    let geo = ArrayGeometry::new(pairs, 64 * 1024, 1 << 30, 1 << 30).expect("valid geometry");
    let array = match scheme {
        Scheme::Graid => geo.disks() + 1, // dedicated log disk
        _ => geo.disks(),
    };
    let plan = recovery_plan(scheme, &geo, failed, logger_pair, recent);
    prop_assert_eq!(plan.failed, failed);
    for &d in plan.wake.iter().chain(plan.silent.iter()) {
        prop_assert!(d < array, "{scheme}: disk {d} out of range {array}");
        prop_assert!(d != failed, "{scheme}: plan recovers from the failed disk");
    }
    for &w in &plan.wake {
        prop_assert!(
            !plan.silent.contains(&w),
            "{scheme}: disk {w} both wakes and serves silently"
        );
    }
    let mut wake = plan.wake.clone();
    wake.sort_unstable();
    wake.dedup();
    prop_assert_eq!(wake.len(), plan.wake.len(), "{scheme}: duplicate wake");
    let mut silent = plan.silent.clone();
    silent.sort_unstable();
    silent.dedup();
    prop_assert_eq!(
        silent.len(),
        plan.silent.len(),
        "{scheme}: duplicate silent"
    );
    prop_assert!(
        plan.disks_involved() < array,
        "{scheme}: {} participants in a {array}-disk array (failed disk excluded)",
        plan.disks_involved()
    );
    prop_assert!(
        plan.disks_involved() >= 1 || plan.redundancy_only,
        "{scheme}: data-losing failure with an empty recovery set"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        max_shrink_iters: 0,
    })]

    #[test]
    fn recovery_plans_are_well_formed(
        pairs in 2usize..20,
        failed_frac in 0u64..1000,
        logger_frac in 0u64..1000,
        recent_a in 0u64..1000,
        recent_b in 0u64..1000,
        scheme_idx in 0usize..5,
    ) {
        let scheme = Scheme::all()[scheme_idx];
        // GRAID's log disk is a valid failure target past the mirrors.
        let disks = match scheme {
            Scheme::Graid => 2 * pairs + 1,
            _ => 2 * pairs,
        };
        let failed = (failed_frac as usize * disks / 1000).min(disks - 1);
        let logger_pair = (logger_frac as usize * pairs / 1000).min(pairs - 1);
        let recent = [
            (recent_a as usize * pairs / 1000).min(pairs - 1),
            (recent_b as usize * pairs / 1000).min(pairs - 1),
        ];
        check_plan(scheme, pairs, failed, logger_pair, &recent)?;
    }

    #[test]
    fn recovery_plans_cover_every_disk_exhaustively(
        pairs in 2usize..8,
        logger_pair_seed in 0u64..1000,
    ) {
        // Sweep every failure target (not just sampled ones) so corner
        // slots — pair 0, the last mirror, GRAID's log disk — are hit on
        // every run.
        for scheme in Scheme::all() {
            let disks = match scheme {
                Scheme::Graid => 2 * pairs + 1,
                _ => 2 * pairs,
            };
            let logger_pair = (logger_pair_seed as usize * pairs / 1000).min(pairs - 1);
            for failed in 0..disks {
                check_plan(scheme, pairs, failed, logger_pair, &[logger_pair])?;
            }
        }
    }
}

proptest! {
    // Each case is a full trace-driven simulation: keep the sample
    // small; the `log_recovery` smoke bin sweeps the dense crash matrix.
    #![proptest_config(ProptestConfig {
        cases: 6,
        max_shrink_iters: 0,
    })]

    /// Randomized crash-point replay: kill a journal-bearing disk at a
    /// random instant under a write-heavy load and require (a) a replay
    /// pass ran and (b) it reconstructed every covered pair's dirty map
    /// byte-identically to the controller's NVRAM state
    /// (`policy.replay_divergence == 0`).
    ///
    /// The in-run comparison is transitively a comparison against the
    /// uncrashed reference: the fault injector's pinned failure at time
    /// T perturbs nothing before T (the event stream up to T is
    /// byte-identical with and without the fault scheduled), so the
    /// controller's pre-crash dirty maps — which the replayed maps must
    /// equal — are exactly the uncrashed run's maps at T.
    #[test]
    fn crash_point_replay_reconstructs_dirty_maps(
        scheme_idx in 0usize..4,
        disk_seed in 0usize..1000,
        crash_secs in 60u64..300,
        trace_seed in 0u64..1000,
    ) {
        let scheme = [Scheme::RoloP, Scheme::RoloR, Scheme::RoloE, Scheme::Graid][scheme_idx];
        let pairs = 4usize;
        let mut cfg = SimConfig::paper_default(scheme, pairs);
        cfg.disk.capacity_bytes = 256 << 20;
        cfg.logger_region = 32 << 20;
        cfg.graid_log_capacity = 64 << 20;
        // A journal-bearing slot: RoLo-P journals its mirrors, RoLo-R
        // and RoLo-E every mirrored disk, GRAID only the log disk.
        let disk = match scheme {
            Scheme::RoloP => pairs + disk_seed % pairs,
            Scheme::RoloR | Scheme::RoloE => disk_seed % (2 * pairs),
            _ => 2 * pairs,
        };
        cfg.faults.disk_failures = vec![(disk, Duration::from_secs(crash_secs))];
        let dur = Duration::from_secs(400);
        let wl = SyntheticConfig::motivation_write_only(40.0);
        let report = rolo::core::run_scheme(&cfg, wl.generator(dur, trace_seed), dur);
        report
            .consistency
            .as_ref()
            .unwrap_or_else(|e| panic!("{scheme}: {e}"));
        let metric = |name: &str| report.metrics.get(name).map(|m| m.value).unwrap_or(0.0);
        prop_assert_eq!(report.faults.disk_failures, 1, "{}: fault never fired", scheme);
        prop_assert!(
            metric("policy.log_replays") >= 1.0,
            "{scheme}: killing journal disk {disk} ran no replay"
        );
        prop_assert_eq!(
            metric("policy.replay_divergence"), 0.0,
            "{}: replayed dirty maps diverged from the controller's", scheme
        );
    }
}
