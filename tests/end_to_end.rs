//! Cross-crate integration tests: trace generation → controller →
//! disks → metrics, through the public facade.

use rolo::core::{recovery_plan, RoloFlavor, RoloPolicy, Scheme, SimConfig};
use rolo::sim::{Duration, SimTime};
use rolo::trace::{parse_msr_csv, profiles, ReqKind, TraceRecord};

fn small_cfg(scheme: Scheme) -> SimConfig {
    let mut cfg = SimConfig::paper_default(scheme, 4);
    cfg.logger_region = 64 << 20;
    cfg.graid_log_capacity = 96 << 20;
    cfg
}

#[test]
fn every_scheme_replays_a_profile_trace() {
    let profile = profiles::src2_2();
    let dur = Duration::from_secs(1800);
    let mut energies = Vec::new();
    for scheme in Scheme::all() {
        let cfg = small_cfg(scheme);
        let report = rolo::core::run_scheme(&cfg, profile.generator(dur, 99), dur);
        report
            .consistency
            .as_ref()
            .unwrap_or_else(|e| panic!("{scheme}: {e}"));
        assert!(report.user_requests > 0, "{scheme} served nothing");
        energies.push((scheme.to_string(), report.total_energy_j));
    }
    // RAID10 must be the most expensive; RoLo-E the cheapest.
    let raid10 = energies[0].1;
    let roloe = energies[4].1;
    for (name, e) in &energies[1..] {
        assert!(*e < raid10, "{name} should beat RAID10");
    }
    assert!(roloe < energies[2].1, "RoLo-E beats RoLo-P on energy");
}

#[test]
fn msr_trace_round_trips_through_simulator() {
    // Build a small MSR-format trace in memory, parse it, replay it.
    let mut csv = String::from("Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime\n");
    let base: u64 = 128_166_372_003_061_629;
    for i in 0..500u64 {
        let ts = base + i * 2_000_000; // 0.2 s apart
        let kind = if i % 5 == 0 { "Read" } else { "Write" };
        let offset = (i * 7 * 64 * 1024) % (8 << 30);
        csv.push_str(&format!("{ts},host,0,{kind},{offset},65536,1000\n"));
    }
    let cfg = small_cfg(Scheme::RoloP);
    let capacity = cfg.geometry().unwrap().logical_capacity();
    let records = parse_msr_csv(csv.as_bytes(), Some(capacity)).expect("parses");
    assert_eq!(records.len(), 500);
    let dur = records.last().unwrap().arrival.since(SimTime::ZERO) + Duration::from_secs(1);
    let report = rolo::core::run_scheme(&cfg, records, dur);
    report.consistency.as_ref().expect("consistent");
    assert_eq!(report.user_requests, 500);
    assert_eq!(
        report.read_responses.count() + report.write_responses.count(),
        500
    );
}

#[test]
fn reports_serialize_to_json() {
    let cfg = small_cfg(Scheme::Graid);
    let profile = profiles::mds_0();
    let dur = Duration::from_secs(600);
    let report = rolo::core::run_scheme(&cfg, profile.generator(dur, 5), dur);
    let json = serde_json::to_string(&report).expect("serializable");
    assert!(json.contains("\"scheme\":\"GRAID\""));
    let back: serde_json::Value = serde_json::from_str(&json).expect("valid json");
    assert_eq!(back["user_requests"].as_u64(), Some(report.user_requests));
}

#[test]
fn recovery_plan_uses_live_policy_state() {
    // Run RoLo-P for a while, then ask which mirrors would wake if a
    // primary failed — it must match the pairs still holding its log
    // copies, and be far fewer than GRAID's full set.
    let cfg = small_cfg(Scheme::RoloP);
    let geo = cfg.geometry().unwrap();
    let policy = RoloPolicy::new(
        RoloFlavor::Performance,
        cfg.pairs,
        geo.logger_base(),
        geo.logger_region(),
        cfg.rotate_free_threshold,
        cfg.destage_chunk,
    );
    // Feed state by hand: simulate that pair 0's copies live on loggers
    // 1 and 2 (no full run needed for the planning API).
    let holders = policy.pairs_holding_copies_of(0);
    assert!(holders.is_empty(), "fresh policy holds nothing");
    let plan = recovery_plan(Scheme::RoloP, &geo, 0, 1, &holders);
    assert_eq!(plan.wake, vec![geo.mirror_disk(0)]);
    let graid_geo = cfg.geometry().unwrap();
    let graid_plan = recovery_plan(Scheme::Graid, &graid_geo, 0, 0, &[]);
    assert!(plan.wake.len() < graid_plan.wake.len());
}

#[test]
fn deterministic_across_full_stack() {
    let profile = profiles::wdev_0();
    let dur = Duration::from_secs(3600);
    let run = || {
        let cfg = small_cfg(Scheme::RoloR);
        rolo::core::run_scheme(&cfg, profile.generator(dur, 1234), dur)
    };
    let a = run();
    let b = run();
    assert_eq!(a.total_energy_j, b.total_energy_j);
    assert_eq!(a.responses.mean(), b.responses.mean());
    assert_eq!(a.spin_cycles, b.spin_cycles);
}

#[test]
fn hand_built_trace_replay() {
    // A hand-built bursty pattern: 50 writes, quiet gap, 50 reads.
    let mut records = Vec::new();
    for i in 0..50u64 {
        records.push(TraceRecord::new(
            SimTime::from_millis(i * 20),
            ReqKind::Write,
            i * 128 * 1024,
            64 * 1024,
        ));
    }
    for i in 0..50u64 {
        records.push(TraceRecord::new(
            SimTime::from_secs(120) + Duration::from_millis(i * 20),
            ReqKind::Read,
            i * 128 * 1024,
            64 * 1024,
        ));
    }
    let cfg = small_cfg(Scheme::RoloP);
    let report = rolo::core::run_scheme(&cfg, records, Duration::from_secs(180));
    report.consistency.as_ref().expect("consistent");
    assert_eq!(report.user_requests, 100);
    assert_eq!(report.read_responses.count(), 50);
    // Reads hit always-on primaries: every read finishes fast.
    assert!(report.read_responses.max().unwrap() < Duration::from_secs(1));
}

#[test]
fn live_recovery_plan_after_real_run() {
    // Drive RoLo-P long enough to rotate, then derive §III-C recovery
    // plans from the live policy state captured mid-flight (before the
    // drain reclaims everything, the holder set is what matters; after
    // drain it is empty, so both cases are checked).
    use rolo::core::run_trace_returning;
    use rolo::trace::SyntheticConfig;

    let mut cfg = small_cfg(Scheme::RoloP);
    cfg.logger_region = 32 << 20;
    let geo = cfg.geometry().unwrap();
    let policy = RoloPolicy::new(
        RoloFlavor::Performance,
        cfg.pairs,
        geo.logger_base(),
        geo.logger_region(),
        cfg.rotate_free_threshold,
        cfg.destage_chunk,
    );
    let dur = Duration::from_secs(300);
    let wl = SyntheticConfig::motivation_write_only(40.0);
    let (report, policy) = run_trace_returning(&cfg, wl.generator(dur, 31), policy, dur);
    report.consistency.as_ref().expect("consistent");
    assert!(report.policy.rotations > 0, "must have rotated");
    // After a clean drain every pair's holder set is empty, and the
    // recovery plan for any primary wakes exactly its own mirror.
    for pair in 0..cfg.pairs {
        let holders = policy.pairs_holding_copies_of(pair);
        assert!(holders.is_empty(), "drained run holds no copies");
        let plan = recovery_plan(
            Scheme::RoloP,
            &geo,
            geo.primary_disk(pair),
            policy.logger_pair(),
            &holders,
        );
        assert!(plan.wake.len() <= 2);
        assert!(!plan.redundancy_only);
    }
}

#[test]
fn energy_accounting_conserves_time() {
    // Aggregate state residency over the trace window must equal
    // wall-time × disk-count exactly — no time may leak from the power
    // accounting, whatever the scheme does with spin states.
    let profile = profiles::src2_2();
    let dur = Duration::from_secs(1200);
    for scheme in Scheme::all() {
        let cfg = small_cfg(scheme);
        let report = rolo::core::run_scheme(&cfg, profile.generator(dur, 77), dur);
        report.consistency.as_ref().expect("consistent");
        let per_disk_window: u64 = dur.as_micros();
        let expected = per_disk_window * cfg.disk_count() as u64;
        let total = report.aggregate_energy.total_time().as_micros();
        assert_eq!(
            total, expected,
            "{scheme}: residency {total} != wall {expected}"
        );
        // And the energy figure is consistent with the power bounds:
        // never below all-standby, never above all-active + transitions.
        let secs = dur.as_secs_f64();
        let n = cfg.disk_count() as f64;
        let min = n * cfg.disk.power_standby_w * secs;
        let max = n * cfg.disk.power_active_w * secs
            + report.spin_cycles as f64 * (cfg.disk.spin_up_energy_j + cfg.disk.spin_down_energy_j)
            + 1.0;
        assert!(
            report.total_energy_j >= min && report.total_energy_j <= max,
            "{scheme}: energy {} outside [{min}, {max}]",
            report.total_energy_j
        );
    }
}

#[test]
fn power_timeline_tracks_scheme_behaviour() {
    // RAID10's power draw is flat (all disks idle/active); RoLo-E's sits
    // far lower with spikes at destage periods. The sampled timeline
    // must reflect both.
    use rolo::trace::SyntheticConfig;
    let dur = Duration::from_secs(1200);
    let wl = SyntheticConfig::motivation_write_only(30.0);
    let raid10 = rolo::core::run_scheme(&small_cfg(Scheme::Raid10), wl.generator(dur, 3), dur);
    let mut cfg_e = small_cfg(Scheme::RoloE);
    cfg_e.logger_region = 1 << 30; // keep centralized destages rare
    let roloe = rolo::core::run_scheme(&cfg_e, wl.generator(dur, 3), dur);
    assert!(!raid10.power_timeline.is_empty());
    let mean = |tl: &[(f64, f64)]| tl.iter().map(|(_, w)| *w).sum::<f64>() / tl.len() as f64;
    let r10 = mean(&raid10.power_timeline);
    let re = mean(&roloe.power_timeline);
    // 8 disks idle ≈ 81.6 W for RAID10; RoLo-E parks six of them.
    assert!(r10 > 75.0, "RAID10 draw {r10} W");
    assert!(re < r10 * 0.7, "RoLo-E draw {re} W !< 70% of {r10} W");
}
