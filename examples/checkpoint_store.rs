//! HPC checkpoint store: the workload §III-B3 motivates RoLo-E with.
//!
//! Periodic, massive, all-write checkpoint dumps with essentially no
//! reads — the case where spinning down *all* non-logger disks pays off
//! and RoLo-E's weaknesses (read-miss spin-ups) never bite.
//!
//! ```text
//! cargo run --release --example checkpoint_store
//! ```

use rolo::core::{Scheme, SimConfig};
use rolo::sim::{Duration, SimTime};
use rolo::trace::{ReqKind, TraceRecord};

/// Builds a checkpointing trace: every `period` seconds, the application
/// dumps `dump_bytes` sequentially at full speed (1 MB requests).
fn checkpoint_trace(
    period: Duration,
    dump_bytes: u64,
    dumps: usize,
    volume_bytes: u64,
) -> Vec<TraceRecord> {
    let req = 1u64 << 20;
    let mut out = Vec::new();
    let mut offset = 0u64;
    for d in 0..dumps {
        let start = SimTime::ZERO + period * d as u64;
        // The writer streams at ~33 MB/s (30 ms between 1 MB requests),
        // below a single disk's sequential rate so the on-duty logger can
        // absorb the dump as it arrives.
        for i in 0..(dump_bytes / req) {
            let arrival = start + Duration::from_millis(30) * i;
            out.push(TraceRecord::new(arrival, ReqKind::Write, offset, req));
            offset = (offset + req) % volume_bytes;
        }
    }
    out
}

fn main() {
    let pairs = 10;
    let period = Duration::from_secs(600); // checkpoint every 10 minutes
    let dump = 1u64 << 30; // 1 GiB per checkpoint
    let dumps = 12; // two hours
    let duration = period * dumps as u64;

    println!("checkpoint store: {dumps} x 1 GiB dumps, one every 10 min, 20 disks\n");
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>8}",
        "scheme", "energy", "mean resp", "p99 resp", "spins"
    );
    for scheme in [Scheme::Raid10, Scheme::Graid, Scheme::RoloP, Scheme::RoloE] {
        let cfg = SimConfig::paper_default(scheme, pairs);
        let volume = cfg.geometry().unwrap().logical_capacity();
        let trace = checkpoint_trace(period, dump, dumps, volume);
        let report = rolo::core::run_scheme(&cfg, trace, duration);
        assert!(report.consistency.is_ok(), "{:?}", report.consistency);
        println!(
            "{:<8} {:>10.2}MJ {:>10.2}ms {:>10.2}ms {:>8}",
            report.scheme,
            report.total_energy_j / 1e6,
            report.mean_response_ms(),
            report
                .responses
                .percentile(99.0)
                .map(|d| d.as_millis_f64())
                .unwrap_or(0.0),
            report.spin_cycles,
        );
    }
    println!("\n(RoLo-E keeps only the on-duty logger pair spinning between dumps;");
    println!(" sequential log appends absorb each burst at near-media speed)");
}
