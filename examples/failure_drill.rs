//! Failure drill: what happens when a primary disk dies under each
//! scheme — which disks wake, how long the rebuild takes, what it costs.
//!
//! ```text
//! cargo run --release --example failure_drill
//! ```

use rolo::core::{rebuild_primary_failure, recovery_plan, Scheme, SimConfig};

fn main() {
    let pairs = 20;
    println!(
        "failure drill: primary disk P0 fails on a {}-disk array\n",
        pairs * 2
    );

    println!("step 1 — §III-C recovery plans (who participates):");
    for scheme in Scheme::all() {
        let cfg = SimConfig::paper_default(scheme, pairs);
        let geo = cfg.geometry().expect("geometry");
        // RoLo-P/R: assume pairs 4,5,6 were the recent on-duty loggers
        // still holding P0's second copies (three unreclaimed periods).
        let recent: Vec<usize> = match scheme {
            Scheme::RoloP | Scheme::RoloR => vec![4, 5, 6],
            _ => vec![],
        };
        let logger = recent.last().copied().unwrap_or(1);
        let plan = recovery_plan(scheme, &geo, 0, logger, &recent);
        println!(
            "  {:<8} wake {:>2} disk(s) {:?}, use {:>2} already-active {:?}",
            scheme.to_string(),
            plan.wake.len(),
            plan.wake,
            plan.silent.len(),
            plan.silent
        );
    }

    println!("\nstep 2 — simulated rebuild onto a replacement drive:");
    println!(
        "  {:<8} {:>9} {:>10} {:>12}",
        "scheme", "awakened", "rebuild", "energy"
    );
    for scheme in Scheme::all() {
        let cfg = SimConfig::paper_default(scheme, pairs);
        let recent: Vec<usize> = match scheme {
            Scheme::RoloP | Scheme::RoloR => vec![4, 5, 6],
            _ => vec![],
        };
        let r = rebuild_primary_failure(&cfg, scheme, &recent);
        println!(
            "  {:<8} {:>9} {:>8.1}m {:>10.1}kJ",
            r.scheme,
            r.disks_awakened,
            r.duration.as_secs_f64() / 60.0,
            r.energy_j / 1e3
        );
    }
    println!("\n(GRAID wakes every mirror; RoLo wakes the pair's own mirror plus the");
    println!(" few recent on-duty loggers — §IV's reliability argument in practice)");
}
