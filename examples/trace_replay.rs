//! Replay a real MSR Cambridge format trace file through any scheme.
//!
//! ```text
//! cargo run --release --example trace_replay -- <trace.csv> [scheme] [pairs]
//! ```
//!
//! The file must be in the MSR block-trace CSV format
//! (`Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime`). With
//! no argument, a small embedded sample demonstrates the flow.

use rolo::core::{Scheme, SimConfig};
use rolo::sim::{Duration, SimTime};
use rolo::trace::parse_msr_csv;
use std::io::BufReader;

const SAMPLE: &str = "\
128166372003061629,demo,0,Write,805306368,65536,1331
128166372043061629,demo,0,Write,105306368,65536,1200
128166372103061629,demo,0,Read,805306368,16384,800
128166372203061629,demo,0,Write,505306368,131072,1500
128166372303061629,demo,0,Write,905306368,65536,1100
";

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scheme = match args.get(2).map(String::as_str) {
        Some("raid10") => Scheme::Raid10,
        Some("graid") => Scheme::Graid,
        Some("rolo-r") => Scheme::RoloR,
        Some("rolo-e") => Scheme::RoloE,
        _ => Scheme::RoloP,
    };
    let pairs: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(10);
    let cfg = SimConfig::paper_default(scheme, pairs);
    let capacity = cfg.geometry().expect("geometry").logical_capacity();

    let records = match args.get(1) {
        Some(path) => {
            let file = std::fs::File::open(path).unwrap_or_else(|e| {
                eprintln!("cannot open {path}: {e}");
                std::process::exit(1);
            });
            parse_msr_csv(BufReader::new(file), Some(capacity)).unwrap_or_else(|e| {
                eprintln!("cannot parse {path}: {e}");
                std::process::exit(1);
            })
        }
        None => {
            println!("(no trace given — replaying a 5-request embedded sample)\n");
            parse_msr_csv(SAMPLE.as_bytes(), Some(capacity)).expect("sample parses")
        }
    };
    if records.is_empty() {
        eprintln!("trace is empty");
        std::process::exit(1);
    }
    let last = records.last().expect("non-empty").arrival;
    let duration = last.since(SimTime::ZERO) + Duration::from_secs(1);
    println!(
        "replaying {} requests over {} through {} on {} disks",
        records.len(),
        duration,
        scheme,
        cfg.disk_count()
    );

    let report = rolo::core::run_scheme(&cfg, records, duration);
    println!("\nmean response  : {:.2} ms", report.mean_response_ms());
    println!(
        "reads / writes : {} / {}",
        report.read_responses.count(),
        report.write_responses.count()
    );
    println!("energy         : {:.2} MJ", report.total_energy_j / 1e6);
    println!("spin cycles    : {}", report.spin_cycles);
    println!("rotations      : {}", report.policy.rotations);
    println!("consistency    : {:?}", report.consistency);
}
