//! Energy comparison: all five schemes on an src2_2-like enterprise
//! write workload — Figure 10 in miniature.
//!
//! ```text
//! cargo run --release --example energy_comparison -- [hours]
//! ```

use rolo::core::{Scheme, SimConfig};
use rolo::sim::Duration;

fn main() {
    let hours: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(24);
    let duration = Duration::from_secs(hours * 3600);
    let profile = rolo::trace::profiles::src2_2();
    println!(
        "replaying a calibrated {} workload for {hours} h on a 40-disk array\n",
        profile.name
    );

    let mut baseline_energy = None;
    let mut baseline_resp = None;
    println!(
        "{:<8} {:>12} {:>10} {:>12} {:>10} {:>7}",
        "scheme", "energy", "vs RAID10", "mean resp", "vs RAID10", "spins"
    );
    for scheme in Scheme::all() {
        let cfg = SimConfig::paper_default(scheme, 20);
        let report = rolo::core::run_scheme(&cfg, profile.generator(duration, 11), duration);
        assert!(report.consistency.is_ok(), "{:?}", report.consistency);
        let e = report.total_energy_j;
        let r = report.mean_response_ms();
        let be = *baseline_energy.get_or_insert(e);
        let br = *baseline_resp.get_or_insert(r);
        println!(
            "{:<8} {:>10.2}MJ {:>9.1}% {:>10.2}ms {:>9.1}% {:>7}",
            report.scheme,
            e / 1e6,
            (1.0 - e / be) * 100.0,
            r,
            (r / br - 1.0) * 100.0,
            report.spin_cycles
        );
    }
    println!("\n(energy saved is relative to the RAID10 row; the paper reports");
    println!(" 47.2 % for RoLo-P/R and 81.7 % for RoLo-E on the full-week trace)");
}
