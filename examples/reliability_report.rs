//! Reliability report: MTTDL curves for every scheme, with the
//! spin-cycle derating the paper argues should accompany raw MTTDL.
//!
//! ```text
//! cargo run --release --example reliability_report
//! ```

use rolo::reliability::{closed_form, hours_to_years, spin, spin_adjusted_lambda};

fn main() {
    let lambda = closed_form::PAPER_LAMBDA_PER_HOUR;
    println!("MTTDL in years (lambda = 1e-5/h), closed forms of §IV:\n");
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "MTTR", "RoLo-R", "RAID10", "RoLo-P", "GRAID", "RoLo-E"
    );
    for days in [1.0, 2.0, 3.0, 5.0, 7.0] {
        let mu = closed_form::mttr_days_to_mu(days);
        println!(
            "{:>9}d {:>10.0} {:>10.0} {:>10.0} {:>10.0} {:>10.0}",
            days,
            hours_to_years(closed_form::rolo_r_4(lambda, mu)),
            hours_to_years(closed_form::raid10_4(lambda, mu)),
            hours_to_years(closed_form::rolo_p_4(lambda, mu)),
            hours_to_years(closed_form::graid_5(lambda, mu)),
            hours_to_years(closed_form::rolo_e_4(lambda, mu)),
        );
    }

    // The combined measure: derate lambda by observed spin cycles
    // (Table I's weekly counts, annualised).
    println!("\nwith spin-cycle derating (Table I weekly spin counts, annualised,");
    println!(
        "rated {} cycles/year):\n",
        spin::DEFAULT_RATED_CYCLES_PER_YEAR
    );
    let mu = closed_form::mttr_days_to_mu(3.0);
    let cases = [
        ("RAID10", 0u64, closed_form::raid10_4 as fn(f64, f64) -> f64),
        ("GRAID", 40, closed_form::graid_5),
        ("RoLo-P", 4, closed_form::rolo_p_4),
        ("RoLo-R", 4, closed_form::rolo_r_4),
        ("RoLo-E", 357, closed_form::rolo_e_4),
    ];
    println!(
        "{:<8} {:>12} {:>14} {:>14} {:>9}",
        "scheme", "spins/week", "plain MTTDL", "derated", "loss"
    );
    for (name, weekly, formula) in cases {
        let annual = spin::annualize_spin_cycles(weekly, 168.0);
        let eff = spin_adjusted_lambda(lambda, annual, spin::DEFAULT_RATED_CYCLES_PER_YEAR);
        let plain = hours_to_years(formula(lambda, mu));
        let derated = hours_to_years(formula(eff, mu));
        println!(
            "{:<8} {:>12} {:>12.0}yr {:>12.0}yr {:>8.1}%",
            name,
            weekly,
            plain,
            derated,
            (1.0 - derated / plain) * 100.0
        );
    }
    println!("\n(RoLo-E's nominally best MTTDL collapses once its spin frequency is");
    println!(" priced in — the paper's argument for restricting it to all-write");
    println!(" workloads, §IV)");
}
