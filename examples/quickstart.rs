//! Quickstart: build a RoLo-P array, run a synthetic write burst through
//! it, and print the report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rolo::core::{Scheme, SimConfig};
use rolo::sim::Duration;
use rolo::trace::SyntheticConfig;

fn main() {
    // A 4-pair (8-disk) RAID10 array running the RoLo-P controller,
    // with a small 256 MiB logging region per mirror so the demo rotates
    // its logger a few times within a minute of simulated time.
    let mut cfg = SimConfig::paper_default(Scheme::RoloP, 4);
    cfg.logger_region = 256 << 20;

    // Five minutes of a 100 %-write, 70 %-random, 64 KB workload at
    // 100 IOPS — the shape of the paper's motivation experiments.
    let duration = Duration::from_secs(300);
    let workload = SyntheticConfig::motivation_write_only(100.0);

    let report = rolo::core::run_scheme(&cfg, workload.generator(duration, 7), duration);

    println!("scheme           : {}", report.scheme);
    println!("requests served  : {}", report.user_requests);
    println!("mean response    : {:.2} ms", report.mean_response_ms());
    println!(
        "p99 response     : {:.2} ms",
        report
            .responses
            .percentile(99.0)
            .map(|d| d.as_millis_f64())
            .unwrap_or(0.0)
    );
    println!("energy           : {:.1} kJ", report.total_energy_j / 1e3);
    println!("logger rotations : {}", report.policy.rotations);
    println!(
        "logged / destaged: {:.1} / {:.1} MiB",
        report.policy.log_appended_bytes as f64 / (1 << 20) as f64,
        report.policy.destaged_bytes as f64 / (1 << 20) as f64
    );
    println!("spin cycles      : {}", report.spin_cycles);

    // Every run ends with a consistency audit: all mirrors caught up and
    // all logging space reclaimed.
    match &report.consistency {
        Ok(()) => println!("consistency      : ok (mirrors consistent, log reclaimed)"),
        Err(e) => println!("consistency      : VIOLATED — {e}"),
    }
}
